// pipeline.h — end-to-end study runners.
//
// Convenience orchestration used by the benchmark harness, the examples and
// the integration tests: generate the synthetic dataset, sanitize it, and
// run every analyzer, returning one results object per study. Probes/logs
// are processed one at a time so memory stays flat regardless of scale.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/assoc.h"
#include "core/durations.h"
#include "core/inference.h"
#include "core/sanitize.h"
#include "core/spatial.h"

namespace dynamips::core {

struct AtlasStudyConfig {
  atlas::AtlasConfig atlas;
  SanitizeOptions sanitize;
  ChangeOptions changes;
};

/// Everything the Atlas-side benches print.
struct AtlasStudy {
  SanitizeStats sanitize;
  std::map<bgp::Asn, AsDurationStats> durations;
  std::map<bgp::Asn, AsSpatialStats> spatial;
  std::map<bgp::Asn, std::vector<SubscriberInference>> subscriber_inference;
  std::map<bgp::Asn, std::vector<PoolInference>> pool_inference;
  std::map<bgp::Asn, std::string> as_names;
  bgp::Rib rib;
};

/// Run the full Atlas pipeline over the given ISP profiles.
AtlasStudy run_atlas_study(const std::vector<simnet::IspProfile>& isps,
                           const AtlasStudyConfig& config);

struct CdnStudyConfig {
  cdn::CdnConfig cdn;
  AssocOptions assoc;
};

/// Everything the CDN-side benches print.
struct CdnStudy {
  CdnAnalyzer analyzer;
  std::map<bgp::Asn, std::string> asn_names;
};

/// Run the full CDN pipeline over the given population.
CdnStudy run_cdn_study(const std::vector<cdn::PopulationEntry>& population,
                       const CdnStudyConfig& config);

}  // namespace dynamips::core
