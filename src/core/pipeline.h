// pipeline.h — end-to-end study runners.
//
// Convenience orchestration used by the benchmark harness, the examples and
// the integration tests: generate the synthetic dataset, sanitize it, and
// run every analyzer, returning one results object per study. Probes/logs
// are processed one at a time so memory stays flat regardless of scale, and
// the index space is sharded across a fixed thread pool (core/parallel.h):
// every analyzer is a mergeable sink, each shard owns a private analyzer
// set, and shards are reduced in index order, so results are byte-identical
// for every `threads` setting (`threads = 1` is the plain serial path).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/assoc.h"
#include "core/durations.h"
#include "core/inference.h"
#include "core/parallel.h"
#include "core/sanitize.h"
#include "core/shutdown.h"
#include "core/spatial.h"
#include "core/status.h"
#include "io/checkpoint.h"
#include "io/readers.h"
#include "obs/metrics.h"

namespace dynamips::core {

/// The analyzer sink concepts the pipeline runs on (see core/parallel.h).
template <typename A>
concept ProbeAnalyzer = SinkOf<A, CleanProbe>;
template <typename A>
concept LogAnalyzer = SinkOf<A, cdn::AssociationLog>;

static_assert(ProbeAnalyzer<DurationAnalyzer>);
static_assert(ProbeAnalyzer<SpatialAnalyzer>);
static_assert(ProbeAnalyzer<InferenceCollector>);
static_assert(LogAnalyzer<CdnAnalyzer>);
static_assert(MergeableAnalyzer<Sanitizer>);
// Shard-local metric buffers ride the same ordered reduction as analyzers.
static_assert(MergeableAnalyzer<obs::MetricsSink>);

// ----------------------------------------------------- crash-safe running
//
// Every study entrypoint can run under supervision: work is dispatched in
// rounds, a shutdown token is polled at round boundaries, and the full
// mid-run state (shard progress + analyzer state + metrics) is periodically
// snapshotted to a checkpoint file (io/checkpoint.h). A run interrupted by
// SIGINT/SIGTERM or a deadline writes a final checkpoint and returns
// kCancelled; resuming from that checkpoint produces results byte-identical
// to an uninterrupted run, at any thread count (the shard partition is
// restored from the checkpoint, so the thread knob only sizes the pool).

struct CheckpointConfig {
  /// Periodic-checkpoint interval, in work items per shard per round (one
  /// Atlas item is one probe's full hourly series; one CDN item is one
  /// population entry's log). 0 disables periodic checkpoints; a shutdown
  /// token may still trigger a final one.
  std::uint64_t every_items = 0;
  /// Checkpoint file path. Required when `every_items > 0` or when a token
  /// is set and an interrupt snapshot is wanted; `.prev` / `.tmp` siblings
  /// are managed next to it.
  std::string path;
  /// Cooperative-shutdown flag polled at round boundaries (never mid-item).
  /// Null disables polling.
  ShutdownToken* token = nullptr;
  /// Checkpoint to resume from; null starts fresh. The study validates the
  /// checkpoint kind, config fingerprint and item count and rejects
  /// mismatches with kFailedPrecondition.
  const io::StudyCheckpoint* resume = nullptr;

  /// True when any supervision feature is active.
  bool active() const { return every_items > 0 || token != nullptr; }
};

struct AtlasStudyConfig {
  atlas::AtlasConfig atlas;
  SanitizeOptions sanitize;
  ChangeOptions changes;
  /// Shard/thread count: 0 = hardware_concurrency, 1 = serial. Results are
  /// identical for every value; only wall-clock changes.
  unsigned threads = 0;
  /// Observability sink: when non-null the pipeline records throughput
  /// counters, per-analyzer phase timings, and shard-imbalance gauges into
  /// per-shard buffers and merges them here after the ordered reduction.
  /// Null (the default) skips all metric work, including clock reads, and
  /// never changes study results either way.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything the Atlas-side benches print.
struct AtlasStudy {
  SanitizeStats sanitize;
  std::map<bgp::Asn, AsDurationStats> durations;
  std::map<bgp::Asn, AsSpatialStats> spatial;
  std::map<bgp::Asn, std::vector<SubscriberInference>> subscriber_inference;
  std::map<bgp::Asn, std::vector<PoolInference>> pool_inference;
  std::map<bgp::Asn, std::string> as_names;
  bgp::Rib rib;
};

/// Run the full Atlas pipeline over the given ISP profiles.
AtlasStudy run_atlas_study(const std::vector<simnet::IspProfile>& isps,
                           const AtlasStudyConfig& config);

/// Supervised variant: honors CheckpointConfig (periodic checkpoints,
/// shutdown polling, resume). Returns kCancelled when interrupted (after
/// writing a final checkpoint when a path is configured) and
/// kFailedPrecondition / kDataLoss for unusable resume state. With a
/// default CheckpointConfig this is exactly run_atlas_study.
Expected<AtlasStudy> run_atlas_study_supervised(
    const std::vector<simnet::IspProfile>& isps,
    const AtlasStudyConfig& config, const CheckpointConfig& checkpoint = {});

struct CdnStudyConfig {
  cdn::CdnConfig cdn;
  AssocOptions assoc;
  /// Shard/thread count: 0 = hardware_concurrency, 1 = serial.
  unsigned threads = 0;
  /// Observability sink; see AtlasStudyConfig::metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything the CDN-side benches print.
struct CdnStudy {
  CdnAnalyzer analyzer;
  std::map<bgp::Asn, std::string> asn_names;
};

/// Run the full CDN pipeline over the given population.
CdnStudy run_cdn_study(const std::vector<cdn::PopulationEntry>& population,
                       const CdnStudyConfig& config);

/// Supervised variant; see run_atlas_study_supervised.
Expected<CdnStudy> run_cdn_study_supervised(
    const std::vector<cdn::PopulationEntry>& population,
    const CdnStudyConfig& config, const CheckpointConfig& checkpoint = {});

// ------------------------------------------------- file-driven entrypoints
//
// The _from_files variants run the identical analyses over datasets loaded
// from exported CSVs (io/readers.h) instead of the in-process generators:
// real-data mode. They are fully fallible — ingestion failures (missing
// file, error budget exceeded) and shard-task exceptions come back as a
// `Status`; no exception escapes and no worker ever reaches
// std::terminate. A clean export of a synthetic dataset produces results
// byte-identical to the generator path at the same seed and any `threads`.

struct AtlasFileStudyConfig {
  SanitizeOptions sanitize;
  ChangeOptions changes;
  /// Shard/thread count: 0 = hardware_concurrency, 1 = serial. Results are
  /// identical for every value; only wall-clock changes.
  unsigned threads = 0;
  /// Observability sink; see AtlasStudyConfig::metrics. Ingestion counters
  /// (`ingest.*`) are recorded here as well.
  obs::MetricsRegistry* metrics = nullptr;
  /// Ingestion hardening knobs: error budget, quarantine sink, line caps.
  io::ReaderOptions reader;
};

/// Load echo datasets from `paths` (later files merge into earlier probes)
/// and run the full Atlas pipeline over them. `isps` provides the RIB and
/// AS names, exactly as in run_atlas_study. `ingest`, when non-null,
/// receives the ingestion accounting even on failure.
Expected<AtlasStudy> run_atlas_study_from_files(
    const std::vector<std::string>& paths,
    const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config, io::IngestStats* ingest = nullptr,
    const CheckpointConfig& checkpoint = {});

struct CdnFileStudyConfig {
  AssocOptions assoc;
  /// Shard/thread count: 0 = hardware_concurrency, 1 = serial.
  unsigned threads = 0;
  /// Observability sink; see AtlasStudyConfig::metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Ingestion hardening knobs.
  io::ReaderOptions reader;
  /// Ground-truth access type per ASN (the CSV schema carries none): logs
  /// whose ASN is listed here are analyzed as mobile networks.
  std::unordered_set<bgp::Asn> mobile_asns;
  /// Registry attribution per ASN; ASNs not listed default to kRipe.
  std::map<bgp::Asn, bgp::Registry> registries;
  /// Display names for the study output (optional).
  std::map<bgp::Asn, std::string> asn_names;
};

/// Load association datasets from `paths` (logs grouped by origin asn6,
/// later files merge into earlier logs) and run the full CDN pipeline.
Expected<CdnStudy> run_cdn_study_from_files(
    const std::vector<std::string>& paths, const CdnFileStudyConfig& config,
    io::IngestStats* ingest = nullptr, const CheckpointConfig& checkpoint = {});

}  // namespace dynamips::core
