// inference.h — subscriber- and pool-boundary inference (§5.2, §5.3).
//
// Two techniques from the paper:
//  * "Finding the zero bits": the bits immediately upstream of the /64
//    boundary that are zero in every /64 a subscriber was observed with
//    reveal the length of the ISP-delegated prefix (a CPE that zero-fills
//    announces the lowest /64 of its delegation). Fig. 6 / Fig. 9 apply
//    this per RIPE Atlas probe; Fig. 7 applies a nibble-rounded variant to
//    each /64 seen at the CDN.
//  * Pool-boundary inference: the longest prefix that still covers the bulk
//    of a subscriber's assignments identifies the ISP's dynamic address
//    pool (typically a /40, §5.2).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "bgp/rib.h"
#include "core/changes.h"
#include "core/sanitize.h"
#include "stats/flatmap.h"

namespace dynamips::io::ckpt {
class Writer;
class Reader;
}  // namespace dynamips::io::ckpt

namespace dynamips::core {

/// Result of the per-probe zero-bits inference.
struct SubscriberInference {
  int inferred_len = 64;  ///< inferred delegated prefix length
  int changes = 0;        ///< v6 changes the inference is based on
};

/// Infer the delegated prefix length of the subscriber behind `probe` from
/// the trailing zero bits common to every observed /64. Requires at least
/// one v6 assignment change (mirroring Fig. 6's probe selection); returns
/// nullopt otherwise. CPEs that scramble or use constant non-zero subnet
/// ids produce /64 (an overestimate), as discussed in §5.3.
std::optional<SubscriberInference> infer_subscriber_prefix(
    const CleanProbe& probe);

/// Span-based variant so callers that already extracted the probe's /64
/// spans (e.g. InferenceCollector::add, which runs both inferences) do not
/// extract them twice.
std::optional<SubscriberInference> infer_subscriber_prefix(
    std::span<const Span6> spans);

/// Result of the pool-boundary inference.
struct PoolInference {
  int pool_len = 0;     ///< inferred pool prefix length (e.g. 40)
  double coverage = 0;  ///< share of assignments inside the dominant pool
};

/// Infer the ISP's dynamic-pool prefix length for this subscriber: the
/// longest (most specific) prefix length whose dominant prefix still covers
/// at least `min_coverage` of the probe's v6 assignments. Requires at least
/// `min_changes` changes for statistical footing.
std::optional<PoolInference> infer_pool(const CleanProbe& probe,
                                        double min_coverage = 0.8,
                                        int min_changes = 5);

/// Span-based variant (see infer_subscriber_prefix above).
std::optional<PoolInference> infer_pool(std::span<const Span6> spans,
                                        double min_coverage = 0.8,
                                        int min_changes = 5);

/// CDN-side nibble classification of one /64's trailing zeros (Fig. 7).
/// Streaks of 16+ zero bits classify as the /48 boundary, 12..15 as /52,
/// 8..11 as /56, 4..7 as /60; fewer than 4 zero bits are uninferable.
enum class ZeroBoundary : std::uint8_t { kNone, k60, k56, k52, k48 };

ZeroBoundary classify_trailing_zeros(std::uint64_t net64);

/// Printable label ("/56") for a boundary; "none" for kNone.
const char* zero_boundary_name(ZeroBoundary b);

/// Per-population tally of zero-boundary classes (one counter per class).
struct ZeroBoundaryCounts {
  std::array<std::uint64_t, 5> counts{};  // indexed by ZeroBoundary

  void add(ZeroBoundary b) { ++counts[std::size_t(b)]; }
  /// Absorb another tally (shard reduction); plain per-class sums.
  void merge(const ZeroBoundaryCounts& o) {
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += o.counts[i];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }
  /// Share of addresses with an inferable delegation (any zero boundary).
  double inferable_fraction() const {
    std::uint64_t t = total();
    return t ? double(t - counts[0]) / double(t) : 0.0;
  }
  double fraction(ZeroBoundary b) const {
    std::uint64_t t = total();
    return t ? double(counts[std::size_t(b)]) / double(t) : 0.0;
  }
};

/// Finalized view of an InferenceCollector: both per-probe inference
/// result sets as the std::map the study structs expose. A plain value —
/// copyable, default-constructible, independent of the collector it was
/// snapshotted from.
struct InferenceSnapshot {
  std::map<bgp::Asn, std::vector<SubscriberInference>> subscriber;
  std::map<bgp::Asn, std::vector<PoolInference>> pools;
};

/// Streaming per-AS collector running both per-probe inferences — the sink
/// the pipeline feeds cleaned probes into (core/parallel.h concept). The
/// per-AS vectors are append-ordered by probe, so shards merged in index
/// order reproduce the serial ordering exactly.
class InferenceCollector {
 public:
  void add(const CleanProbe& probe);
  void merge(InferenceCollector&& other);
  void finalize() {}

  /// Checkpoint serialization (io/checkpoint.h).
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

  const stats::FlatMap<bgp::Asn, std::vector<SubscriberInference>>&
  subscriber() const {
    return subscriber_;
  }
  const stats::FlatMap<bgp::Asn, std::vector<PoolInference>>& pools() const {
    return pool_;
  }

  /// Copy the collected results out without consuming the accumulator
  /// (core/parallel.h SnapshotAnalyzer; replaces the former consuming
  /// take_subscriber/take_pools pair). FlatMap iterates ASNs ascending, so
  /// this is a linear in-order std::map build; the collector keeps
  /// appending per-probe results afterwards.
  InferenceSnapshot snapshot() const {
    InferenceSnapshot out;
    for (const auto& [asn, results] : subscriber_)
      out.subscriber.emplace(asn, results);
    for (const auto& [asn, results] : pool_) out.pools.emplace(asn, results);
    return out;
  }

 private:
  stats::FlatMap<bgp::Asn, std::vector<SubscriberInference>> subscriber_;
  stats::FlatMap<bgp::Asn, std::vector<PoolInference>> pool_;
};

}  // namespace dynamips::core
