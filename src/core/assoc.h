// assoc.h — CDN association analyses (§4, Figs. 2-4, Fig. 7).
//
// Streaming aggregation over per-ISP association logs:
//  * pre-processing: discard tuples whose v4 and v6 origin ASNs differ
//    (multi-homing / WiFi-cellular switching), as in §4.1;
//  * association durations: per /64, the run of days over which it kept
//    reporting the same /24 (Fig. 2 per-ISP CDFs, Fig. 3 registry boxes);
//  * cardinality: unique /64s per /24, unweighted and hit-weighted
//    (Fig. 4), and the inverse connectivity of each /64;
//  * trailing-zero classification of every unique /64 per registry (Fig. 7).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bgp/rib.h"
#include "cdn/rum.h"
#include "core/arena.h"
#include "core/inference.h"
#include "stats/flatmap.h"
#include "stats/summary.h"

namespace dynamips::io::ckpt {
class Writer;
class Reader;
}  // namespace dynamips::io::ckpt

namespace dynamips::core {

struct AssocOptions {
  /// Apply the ASN-match pre-filter (§4.1). Disabling it is the ablation
  /// discussed in DESIGN.md.
  bool require_asn_match = true;
  /// Maximum gap (days) inside one association run; a /64 silent for longer
  /// starts a new run when it reappears.
  std::uint32_t max_gap_days = 14;
  /// External-merge spill budget for add_log's per-shard sort scratch, in
  /// MiB. 0 (the default) keeps the sort fully in memory; a positive
  /// budget bounds the working set per shard — sorted runs spill to temp
  /// files and merge back (stats/extsort.h). Results are byte-identical at
  /// every budget, so neither knob enters the config fingerprint.
  std::uint64_t spill_mb = 0;
  /// Spill directory; empty uses std::filesystem::temp_directory_path().
  std::string spill_dir;
};

/// Aggregated duration statistics for one ASN.
struct AsnAssocStats {
  bgp::Asn asn = 0;
  bool mobile = false;
  bgp::Registry registry{};
  std::vector<double> durations_days;  ///< association durations
  std::uint64_t tuples = 0;            ///< accepted association tuples
  std::uint64_t mismatched = 0;        ///< dropped by the ASN filter
  std::uint64_t unique_64s = 0;

  /// Absorb another shard's stats for the same ASN; durations are appended
  /// after ours, so merging shards in index order preserves log order.
  void merge(const AsnAssocStats& o) {
    durations_days.insert(durations_days.end(), o.durations_days.begin(),
                          o.durations_days.end());
    tuples += o.tuples;
    mismatched += o.mismatched;
    unique_64s += o.unique_64s;
  }
};

/// Key for (registry, mobile) groupings.
struct RegistryClass {
  bgp::Registry registry{};
  bool mobile = false;
  friend bool operator<(const RegistryClass& a, const RegistryClass& b) {
    if (a.registry != b.registry) return a.registry < b.registry;
    return a.mobile < b.mobile;
  }
};

/// Finalized, read-only view of a CdnAnalyzer's accumulated results. The
/// analyzer itself is non-copyable (it owns a scratch arena) and its
/// accumulation is append-ordered, so streaming snapshots copy the result
/// state out into this plain value: default-constructible, copyable, and
/// mirroring the analyzer's accessor surface so result emission
/// (io/results_io.h) and the benches work on either. Taking a snapshot
/// does not consume the analyzer — later add_log() calls keep
/// accumulating and a later snapshot reflects them.
class CdnSnapshot {
 public:
  CdnSnapshot() = default;

  const stats::FlatMap<bgp::Asn, AsnAssocStats>& by_asn() const {
    return by_asn_;
  }
  const stats::FlatMap<RegistryClass, std::vector<double>>&
  registry_durations() const {
    return registry_durations_;
  }
  const std::vector<std::pair<std::uint32_t, bool>>& degrees() const {
    return degrees_;
  }
  const stats::FlatMap<RegistryClass, ZeroBoundaryCounts>& zero_counts()
      const {
    return zero_counts_;
  }
  double fraction_64s_with_single_24(bool mobile) const {
    std::uint64_t s = single_24_64s_[mobile];
    std::uint64_t m = multi_24_64s_[mobile];
    return (s + m) ? double(s) / double(s + m) : 0.0;
  }
  std::uint64_t total_tuples() const { return total_tuples_; }
  std::uint64_t total_mismatched() const { return total_mismatched_; }

 private:
  friend class CdnAnalyzer;

  stats::FlatMap<bgp::Asn, AsnAssocStats> by_asn_;
  stats::FlatMap<RegistryClass, std::vector<double>> registry_durations_;
  std::vector<std::pair<std::uint32_t, bool>> degrees_;
  stats::FlatMap<RegistryClass, ZeroBoundaryCounts> zero_counts_;
  std::uint64_t single_24_64s_[2] = {0, 0};
  std::uint64_t multi_24_64s_[2] = {0, 0};
  std::uint64_t total_tuples_ = 0;
  std::uint64_t total_mismatched_ = 0;
};

/// Streaming CDN analyzer. Feed one AssociationLog at a time; per-log
/// working state is discarded after each call, so the multi-billion-tuple
/// scale of the real dataset is handled by construction.
class CdnAnalyzer {
 public:
  CdnAnalyzer(AssocOptions options,
              std::unordered_set<bgp::Asn> mobile_asns)
      : options_(options), mobile_asns_(std::move(mobile_asns)) {}

  void add_log(const cdn::AssociationLog& log);

  // Sink interface (core/parallel.h). Per-log output is a pure function of
  // the log, and merge appends the other shard's append-ordered vectors
  // after ours, so shards merged in index order are byte-identical to the
  // serial run.
  void add(const cdn::AssociationLog& log) { add_log(log); }
  void merge(CdnAnalyzer&& other);
  void finalize() {}

  /// Checkpoint serialization (io/checkpoint.h): every accumulated map and
  /// vector, bit-exact; options and the mobile-ASN set are reconstructed
  /// from the run config on resume.
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

  /// Per-ASN stats (Fig. 2 inputs). FlatMap iterates ASNs in the same
  /// ascending order the former std::map did.
  const stats::FlatMap<bgp::Asn, AsnAssocStats>& by_asn() const {
    return by_asn_;
  }

  /// Per (registry, mobile) association durations (Fig. 3 inputs).
  const stats::FlatMap<RegistryClass, std::vector<double>>&
  registry_durations() const {
    return registry_durations_;
  }

  /// Per-/24 degrees: (unique /64 count, mobile flag), one entry per /24
  /// (Fig. 4 inputs).
  const std::vector<std::pair<std::uint32_t, bool>>& degrees() const {
    return degrees_;
  }

  /// Share of /64s associated with exactly one /24 (the 87% statistic).
  double fraction_64s_with_single_24(bool mobile) const;

  /// Fig. 7: trailing-zero classes per registry, fixed and mobile.
  const stats::FlatMap<RegistryClass, ZeroBoundaryCounts>& zero_counts()
      const {
    return zero_counts_;
  }

  std::uint64_t total_tuples() const { return total_tuples_; }
  std::uint64_t total_mismatched() const { return total_mismatched_; }

  /// External-merge runs spilled so far (0 with an in-memory budget).
  /// Observability only: deliberately NOT serialized and NOT part of
  /// snapshots, so a spilled run's checkpoints and results stay
  /// byte-identical to an in-memory run's.
  std::uint64_t spill_runs() const { return spill_runs_; }
  std::uint64_t spill_bytes() const { return spill_bytes_; }

  /// Copy the accumulated results into a finalized read-only view
  /// (core/parallel.h SnapshotAnalyzer). The accumulation is purely
  /// append-ordered, so the copy is already canonical; the analyzer keeps
  /// accepting logs afterwards.
  CdnSnapshot snapshot() const;

 private:
  AssocOptions options_;
  std::unordered_set<bgp::Asn> mobile_asns_;

  stats::FlatMap<bgp::Asn, AsnAssocStats> by_asn_;
  stats::FlatMap<RegistryClass, std::vector<double>> registry_durations_;
  std::vector<std::pair<std::uint32_t, bool>> degrees_;
  stats::FlatMap<RegistryClass, ZeroBoundaryCounts> zero_counts_;
  MonotonicArena arena_;  ///< per-log scratch for the tuple/pair sorts
  // Inverse connectivity tallies: /64s by how many distinct /24s they saw.
  std::uint64_t single_24_64s_[2] = {0, 0};  // [mobile]
  std::uint64_t multi_24_64s_[2] = {0, 0};
  std::uint64_t total_tuples_ = 0;
  std::uint64_t total_mismatched_ = 0;
  std::uint64_t spill_runs_ = 0;   ///< not serialized (see spill_runs())
  std::uint64_t spill_bytes_ = 0;  ///< not serialized
};

}  // namespace dynamips::core
