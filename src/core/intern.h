// intern.h — append-only string interning pool.
//
// Probe tags repeat across the whole dataset (a handful of distinct values
// over hundreds of thousands of probes), yet they used to travel as
// std::vector<std::string> through ProbeMeta and ProbeObservations — one
// heap string per tag per probe per hop. Interning stores each distinct
// string once and hands out a dense 32-bit id; the per-probe payload
// becomes a vector of ints and tag comparisons become integer equality.
//
// Ids are stable for the lifetime of the pool and assigned in first-intern
// order. The pool is thread-safe (shards intern concurrently during
// parallel ingestion); name_of() returns a reference that stays valid
// forever because the backing deque never relocates elements.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dynamips::core {

/// Dense id of an interned string (index into the pool).
using TagId = std::uint32_t;

class StringInterner {
 public:
  /// Id of `s`, interning it on first sight.
  TagId intern(std::string_view s) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    strings_.emplace_back(s);
    TagId id = TagId(strings_.size() - 1);
    index_.emplace(strings_.back(), id);
    return id;
  }

  /// The string behind an id; throws std::out_of_range on an unknown id.
  const std::string& name_of(TagId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return strings_.at(id);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return strings_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::string> strings_;  // deque: references never relocate
  std::unordered_map<std::string_view, TagId> index_;  // views into strings_
};

/// Process-wide pool for probe tags (generator, CSV readers/writers, and
/// the sanitizer all speak the same ids).
inline StringInterner& tag_pool() {
  static StringInterner pool;
  return pool;
}

}  // namespace dynamips::core
