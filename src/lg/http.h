// http.h — minimal HTTP/1.1 request parsing and response rendering.
//
// Only what the looking-glass service needs: GET requests, keep-alive, and
// small JSON responses. Parsing is a pure function over the request head
// (request line + headers), so every edge case is unit-testable without a
// socket; the server (src/lg/server.h) owns the byte stream and its
// limits. Anything malformed maps to a ready-to-send error response with
// the precise status code (400/405/414/505), never an exception.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dynamips::lg {

/// Longest accepted request line; beyond it the target is rejected as 414.
inline constexpr std::size_t kMaxRequestLine = 4096;
/// Longest accepted request head (request line + all headers); the server
/// answers 431 and closes once a connection exceeds it.
inline constexpr std::size_t kMaxHeadBytes = 16384;

/// A parsed request head.
struct Request {
  std::string method;      ///< "GET"
  std::string path;        ///< percent-decoded path, query stripped
  std::string version;     ///< "HTTP/1.1"
  bool keep_alive = true;  ///< after Connection header + version defaults
};

/// A response ready for rendering.
struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers rendered verbatim after Content-Length (e.g.
  /// {"Retry-After", "1"} on a load-shedding 503).
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Reason phrase for the handful of status codes the service emits.
const char* status_reason(int status);

/// Decode %xx escapes in place of the encoded bytes; invalid escapes are
/// kept verbatim ("%zz" stays "%zz"), so decoding never fails.
std::string percent_decode(std::string_view text);

/// Escape a string for embedding in a JSON document.
std::string json_escape(std::string_view text);

/// A JSON error body ({"error": ...}) with the given status.
Response error_response(int status, std::string_view message);

/// Parse a request head (everything before the blank line, CRLF or bare LF
/// separated). On failure returns nullopt and fills *error with the
/// response to send: 400 for a malformed line, 405 for a method other than
/// GET, 414 for an oversize request line, 505 for an unknown version.
std::optional<Request> parse_request_head(std::string_view head,
                                          Response* error);

/// Serialize status line, headers and body. `keep_alive` decides the
/// Connection header; the body always carries a Content-Length.
std::string render_response(const Response& response, bool keep_alive);

}  // namespace dynamips::lg
