// server.h — threaded HTTP/1.1 server for the looking-glass service.
//
// Deliberately small: a blocking accept loop on its own thread plus a
// fixed worker pool draining a connection queue — the same fixed-pool,
// claim-under-one-mutex discipline as core::ShardExecutor, applied to
// connections instead of shards. Workers speak just enough HTTP/1.1 to
// serve keep-alive GETs: read a request head (bounded), route it through
// LgService::handle, write the rendered response with MSG_NOSIGNAL, and
// loop until the client closes, the idle timeout fires, or shutdown is
// requested.
//
// Shutdown is cooperative and drains cleanly: when the ShutdownToken
// trips (or stop() is called), the accept loop closes the listener, the
// workers finish their in-flight request, queued-but-unserved connections
// are closed, and every thread is joined — no file descriptor outlives
// stop(), so a new server can bind the same port immediately
// (SO_REUSEADDR covers the TIME_WAIT tail).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/shutdown.h"
#include "core/status.h"
#include "lg/service.h"
#include "obs/metrics.h"

namespace dynamips::lg {

struct ServerConfig {
  /// Listen address; loopback by default (CI and local runs).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Worker threads serving requests. 0 resolves to hardware concurrency.
  unsigned threads = 4;
  /// listen(2) backlog.
  int backlog = 128;
  /// How often the accept loop and idle workers re-check for shutdown.
  std::uint64_t poll_ms = 100;
  /// Keep-alive connections idle longer than this are closed.
  std::uint64_t idle_timeout_ms = 5000;
  /// Per-connection send deadline (slow-loris/slow-reader defense): a
  /// response that cannot be fully written within this budget drops the
  /// connection and reclaims the worker, counted in `lg.slow_client_drops`.
  /// 0 disables the deadline (sends may block on a stalled peer).
  std::uint64_t send_timeout_ms = 5000;
  /// Admission cap: with this many connections accepted-but-unfinished, new
  /// arrivals are shed with `503 + Retry-After` instead of queueing
  /// unboundedly, counted in `lg.shed`. 0 means unlimited.
  std::uint64_t max_connections = 0;
  /// Cooperative shutdown; null means only stop() ends the server.
  core::ShutdownToken* token = nullptr;
  /// When non-null, lg.* counters are flushed here on stop(); shed and
  /// slow-client drops are also incremented live, so /v1/metricsz shows
  /// overload while it is happening.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Request/connection accounting, aggregated across workers at stop().
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t shed = 0;               ///< admission-cap 503s
  std::uint64_t slow_client_drops = 0;  ///< send-deadline disconnects
};

class LgServer {
 public:
  /// The service must outlive the server.
  LgServer(const LgService& service, ServerConfig config);
  ~LgServer();

  LgServer(const LgServer&) = delete;
  LgServer& operator=(const LgServer&) = delete;

  /// Bind + listen + start the accept and worker threads. Fails with
  /// kUnavailable when the address/port cannot be bound.
  core::Status start();

  /// The bound port (after start(); resolves port 0 to the real one).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, drain in-flight requests, join all threads, close
  /// every socket. Idempotent; also runs from the destructor.
  void stop();

  /// Aggregated accounting; complete after stop().
  ServerStats stats() const;

  /// Block until the shutdown token trips (polling at poll_ms), then
  /// stop(). Convenience for drivers that have nothing else to do.
  void serve_until_shutdown();

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd, ServerStats& stats);
  /// Write the whole buffer under the send deadline: non-blocking sends
  /// with POLLOUT waits in poll_ms slices, aborting on shutdown or once
  /// send_timeout_ms elapses (*timed_out distinguishes the deadline from a
  /// dead peer).
  bool send_with_deadline(int fd, std::string_view data, bool* timed_out);
  /// Best-effort 503 + Retry-After + close for an arrival over the
  /// admission cap; must never block the acceptor.
  void shed_connection(int fd);
  bool stopping() const {
    return stop_.load(std::memory_order_relaxed) ||
           (config_.token && config_.token->requested());
  }

  const LgService& service_;
  ServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  ServerStats stats_;           // merged under mu_ as workers exit
  std::uint64_t accepted_ = 0;  // connections accepted (under mu_)
  // Accepted-but-unfinished connections (queued + in-flight), the
  // admission-cap measure. Atomic: bumped by the acceptor, dropped by
  // whichever thread retires the connection.
  std::atomic<std::uint64_t> active_{0};
};

}  // namespace dynamips::lg
