#include "lg/http.h"

#include <cctype>
#include <cstdio>

namespace dynamips::lg {

namespace {

/// Case-insensitive ASCII comparison for header names/values.
bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string percent_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      int hi = hex_digit(text[i + 1]), lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(char(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(text[i]);
  }
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Response error_response(int status, std::string_view message) {
  Response r;
  r.status = status;
  r.body = "{\"error\": \"" + json_escape(message) + "\"}\n";
  return r;
}

std::optional<Request> parse_request_head(std::string_view head,
                                          Response* error) {
  auto fail = [&](int status, std::string_view msg) -> std::optional<Request> {
    if (error) *error = error_response(status, msg);
    return std::nullopt;
  };

  std::size_t eol = head.find('\n');
  std::string_view line =
      eol == std::string_view::npos ? head : head.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.size() > kMaxRequestLine)
    return fail(414, "request line too long");

  std::size_t sp1 = line.find(' ');
  std::size_t sp2 = sp1 == std::string_view::npos
                        ? std::string_view::npos
                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos)
    return fail(400, "malformed request line");

  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() || target.front() != '/')
    return fail(400, "malformed request line");
  if (version != "HTTP/1.1" && version != "HTTP/1.0")
    return fail(505, "unsupported HTTP version");
  if (method != "GET") return fail(405, "only GET is served");

  Request req;
  req.method = std::string(method);
  req.version = std::string(version);
  req.keep_alive = version == "HTTP/1.1";  // 1.0 defaults to close

  std::size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  req.path = percent_decode(target);

  // Headers: only Connection matters to this service.
  std::size_t pos = eol == std::string_view::npos ? head.size() : eol + 1;
  while (pos < head.size()) {
    std::size_t next = head.find('\n', pos);
    std::string_view hline = head.substr(
        pos, next == std::string_view::npos ? head.size() - pos : next - pos);
    pos = next == std::string_view::npos ? head.size() : next + 1;
    if (!hline.empty() && hline.back() == '\r') hline.remove_suffix(1);
    if (hline.empty()) break;
    std::size_t colon = hline.find(':');
    if (colon == std::string_view::npos)
      return fail(400, "malformed header line");
    std::string_view name = trim(hline.substr(0, colon));
    std::string_view value = trim(hline.substr(colon + 1));
    if (iequals(name, "connection")) {
      if (iequals(value, "close"))
        req.keep_alive = false;
      else if (iequals(value, "keep-alive"))
        req.keep_alive = true;
    }
  }
  return req;
}

std::string render_response(const Response& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 160);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  for (const auto& [name, value] : response.extra_headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += keep_alive ? "\r\nConnection: keep-alive"
                    : "\r\nConnection: close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace dynamips::lg
