#include "lg/service.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/resource.h"
#include "netaddr/ipv4.h"
#include "netaddr/ipv6.h"
#include "netaddr/prefix.h"
#include "stats/ecdf.h"
#include "stats/ttf.h"

namespace dynamips::lg {

namespace {

/// The quantile grid every duration payload reports.
constexpr double kQuantiles[] = {0.10, 0.25, 0.50, 0.75, 0.90, 0.99};
constexpr const char* kQuantileNames[] = {"p10", "p25", "p50",
                                          "p75", "p90", "p99"};

/// Stable double formatting, matching obs/metrics_json.cpp: two renders of
/// equal state are byte-identical, which is what the soak's consistency
/// check compares.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string fmt(std::uint64_t v) { return std::to_string(v); }

/// Inverse cumulative total-time fraction: the smallest duration (hours)
/// at which the time-weighted CDF reaches q — the Fig. 1 curve read
/// backwards.
std::uint64_t ttf_quantile(const stats::TotalTimeFraction& ttf, double q) {
  if (ttf.total_hours() == 0) return 0;
  double target = q * double(ttf.total_hours());
  double acc = 0;
  std::uint64_t last = 0;
  for (auto [hours, count] : ttf.counts()) {
    acc += double(count) * double(hours);
    last = hours;
    if (acc >= target) return hours;
  }
  return last;
}

std::string ttf_json(const stats::TotalTimeFraction& ttf) {
  std::string out = "{\"count\": " + fmt(ttf.total_count()) +
                    ", \"total_hours\": " + fmt(ttf.total_hours());
  for (std::size_t i = 0; i < std::size(kQuantiles); ++i)
    out += std::string(", \"") + kQuantileNames[i] +
           "\": " + fmt(ttf_quantile(ttf, kQuantiles[i]));
  out += "}";
  return out;
}

std::string ecdf_json(const stats::Ecdf& ecdf) {
  std::string out = "{\"count\": " + fmt(std::uint64_t(ecdf.size()));
  for (std::size_t i = 0; i < std::size(kQuantiles); ++i)
    out += std::string(", \"") + kQuantileNames[i] +
           "\": " + fmt(ecdf.quantile(kQuantiles[i]));
  out += "}";
  return out;
}

std::string name_field(const std::map<bgp::Asn, std::string>& names,
                       bgp::Asn asn) {
  auto it = names.find(asn);
  if (it == names.end()) return "null";
  std::string quoted = "\"";
  quoted += json_escape(it->second);
  quoted += "\"";
  return quoted;
}

std::string health_json(std::uint64_t generation, std::uint64_t batches,
                        std::uint64_t records,
                        const std::map<bgp::Asn, std::string>& payloads) {
  std::string out = "{\"snapshot\": " + fmt(generation) +
                    ", \"batches\": " + fmt(batches) +
                    ", \"records\": " + fmt(records) + ", \"ases\": [";
  bool first = true;
  for (const auto& [asn, body] : payloads) {
    if (!first) out += ", ";
    first = false;
    out += fmt(std::uint64_t(asn));
  }
  out += "]}";
  return out;
}

/// Parse a decimal ASN. Returns false on anything but pure digits in
/// 32-bit range.
bool parse_asn(std::string_view text, bgp::Asn* out) {
  if (text.empty() || text.size() > 10) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + std::uint64_t(c - '0');
  }
  if (value > 0xffffffffull) return false;
  *out = bgp::Asn(value);
  return true;
}

/// One route-result fragment ({"prefix": ..., "asn": ..., ...}).
template <typename Route>
std::string route_json(const Route& route,
                       const std::map<bgp::Asn, std::string>& names) {
  return "{\"prefix\": \"" + route.prefix.to_string() +
         "\", \"asn\": " + fmt(std::uint64_t(route.origin.asn)) +
         ", \"name\": " + name_field(names, route.origin.asn) +
         ", \"registry\": \"" + bgp::registry_name(route.origin.registry) +
         "\"}";
}

Response json_ok(std::string body) {
  Response r;
  body += "\n";
  r.body = std::move(body);
  return r;
}

}  // namespace

std::shared_ptr<const LgSnapshot> build_atlas_snapshot(
    const core::AtlasStudy& study, std::uint64_t generation,
    std::uint64_t batches, std::uint64_t records) {
  auto snap = std::make_shared<LgSnapshot>();
  snap->generation = generation;
  snap->batches = batches;
  snap->records = records;
  snap->as_names = study.as_names;

  for (const auto& [asn, stats] : study.durations) {
    std::string body =
        "{\"snapshot\": " + fmt(generation) +
        ", \"asn\": " + fmt(std::uint64_t(asn)) +
        ", \"name\": " + name_field(study.as_names, asn) +
        ", \"probes\": " + fmt(stats.probes) +
        ", \"ds_probes\": " + fmt(stats.ds_probes) +
        ", \"probes_with_change\": " + fmt(stats.probes_with_change) +
        ", \"v4_changes\": " + fmt(stats.v4_changes) +
        ", \"v6_changes\": " + fmt(stats.v6_changes) +
        ", \"cooccurrence\": " + fmt(stats.cooccurrence()) +
        ", \"duration_hours\": {\"v4_nds\": " + ttf_json(stats.v4_nds) +
        ", \"v4_ds\": " + ttf_json(stats.v4_ds) +
        ", \"v6\": " + ttf_json(stats.v6) + "}}";
    snap->payloads.emplace(asn, std::move(body));
  }

  // Inference fragments: subscriber-length histogram + pool summary. ASNs
  // appear when either technique produced at least one result.
  std::map<bgp::Asn, std::string> sub_json;
  for (const auto& [asn, results] : study.subscriber_inference) {
    std::map<int, std::uint64_t> lengths;
    for (const auto& r : results) ++lengths[r.inferred_len];
    std::string body = "{\"count\": " + fmt(std::uint64_t(results.size())) +
                       ", \"lengths\": {";
    bool first = true;
    for (auto [len, n] : lengths) {
      if (!first) body += ", ";
      first = false;
      body += "\"";
      body += std::to_string(len);
      body += "\": ";
      body += fmt(n);
    }
    body += "}}";
    sub_json.emplace(asn, std::move(body));
  }
  std::map<bgp::Asn, std::string> pool_json;
  for (const auto& [asn, results] : study.pool_inference) {
    if (results.empty()) continue;
    std::vector<int> lens;
    lens.reserve(results.size());
    double coverage = 0;
    for (const auto& r : results) {
      lens.push_back(r.pool_len);
      coverage += r.coverage;
    }
    std::sort(lens.begin(), lens.end());
    pool_json.emplace(
        asn, "{\"count\": " + fmt(std::uint64_t(results.size())) +
                 ", \"median_len\": " + std::to_string(lens[lens.size() / 2]) +
                 ", \"mean_coverage\": " +
                 fmt(coverage / double(results.size())) + "}");
  }
  for (const auto& [asn, sub] : sub_json) {
    auto pool = pool_json.find(asn);
    snap->inference.emplace(
        asn, "{\"subscriber\": " + sub + ", \"pool\": " +
                 (pool == pool_json.end() ? std::string("null")
                                          : pool->second) +
                 "}");
  }
  for (const auto& [asn, pool] : pool_json)
    snap->inference.emplace(asn,
                            "{\"subscriber\": null, \"pool\": " + pool + "}");

  // The RIB is move-only; rebuild it from the study's announced routes so
  // the snapshot owns its own LPM substrate.
  for (const auto& route : study.rib.v4_routes())
    snap->rib.announce(route.prefix, route.origin);
  for (const auto& route : study.rib.v6_routes())
    snap->rib.announce(route.prefix, route.origin);

  snap->health = health_json(generation, batches, records, snap->payloads);
  return snap;
}

std::shared_ptr<const LgSnapshot> build_cdn_snapshot(
    const core::CdnStudy& study, std::uint64_t generation,
    std::uint64_t batches, std::uint64_t records) {
  auto snap = std::make_shared<LgSnapshot>();
  snap->generation = generation;
  snap->batches = batches;
  snap->records = records;
  snap->as_names = study.asn_names;

  for (const auto& [asn, stats] : study.analyzer.by_asn()) {
    stats::Ecdf days;
    for (double d : stats.durations_days) days.add(d);
    days.finalize();
    std::string body =
        "{\"snapshot\": " + fmt(generation) +
        ", \"asn\": " + fmt(std::uint64_t(asn)) +
        ", \"name\": " + name_field(study.asn_names, asn) +
        ", \"mobile\": " + (stats.mobile ? "true" : "false") +
        ", \"registry\": \"" + bgp::registry_name(stats.registry) +
        "\", \"tuples\": " + fmt(stats.tuples) +
        ", \"mismatched\": " + fmt(stats.mismatched) +
        ", \"unique_64s\": " + fmt(stats.unique_64s) +
        ", \"assoc_days\": " + ecdf_json(days) + "}";
    snap->payloads.emplace(asn, std::move(body));
  }

  snap->health = health_json(generation, batches, records, snap->payloads);
  return snap;
}

Response LgService::handle(const Request& request) const {
  const std::string& path = request.path;
  auto strip = [&](std::string_view prefix) -> std::string_view {
    return std::string_view(path).substr(prefix.size());
  };
  if (path == "/v1/healthz") return handle_healthz();
  if (path == "/v1/readyz") return handle_readyz();
  if (path == "/v1/metricsz") return handle_metricsz();
  if (path.starts_with("/v1/durations/"))
    return handle_durations(strip("/v1/durations/"));
  if (path.starts_with("/v1/assoc/")) return handle_assoc(strip("/v1/assoc/"));
  if (path.starts_with("/v1/infer/")) return handle_infer(strip("/v1/infer/"));
  if (path.starts_with("/v1/pfx2as/"))
    return handle_pfx2as(strip("/v1/pfx2as/"));
  return error_response(404, "unknown endpoint");
}

Response LgService::handle_healthz() const {
  auto atlas = atlas_.get();
  auto cdn = cdn_.get();
  std::string body = "{\"status\": \"ok\", \"atlas\": ";
  body += atlas ? atlas->health : "null";
  body += ", \"cdn\": ";
  body += cdn ? cdn->health : "null";
  body += "}";
  return json_ok(std::move(body));
}

Response LgService::handle_readyz() const {
  // Liveness (healthz) says "the process can answer"; readiness says "send
  // it more work". A degraded governor state keeps healthz green — the
  // supervisor must not kill a process that is shedding load on purpose —
  // while readyz turns 503 so load balancers drain politely.
  if (!config_.governor) return json_ok("{\"status\": \"ready\"}");
  core::ResourceState state = config_.governor->sample();
  std::string body = std::string("{\"status\": \"") +
                     (state.degraded() ? "degraded" : "ready") +
                     "\", \"rss_mb\": " + fmt(state.rss_mb) +
                     ", \"disk_free_mb\": " +
                     (state.disk_sampled ? fmt(state.disk_free_mb)
                                         : std::string("null")) +
                     ", \"backlog_batches\": " + fmt(state.backlog_batches) +
                     ", \"memory_pressure\": " +
                     (state.memory_pressure ? "true" : "false") +
                     ", \"disk_pressure\": \"" +
                     std::string(core::disk_pressure_name(state.disk)) +
                     "\"}";
  if (!state.degraded()) return json_ok(std::move(body));
  Response r;
  r.status = 503;
  r.body = std::move(body);
  r.extra_headers.push_back({"Retry-After", "1"});
  return r;
}

Response LgService::handle_metricsz() const {
  if (!config_.metrics) return error_response(503, "metrics disabled");
  Response r;
  r.body = obs::metrics_to_json(config_.metrics->snapshot(), config_.meta);
  return r;
}

Response LgService::handle_durations(std::string_view rest) const {
  bgp::Asn asn = 0;
  if (!parse_asn(rest, &asn)) return error_response(400, "malformed ASN");
  auto snap = atlas_.get();
  if (!snap) return error_response(503, "no atlas snapshot published yet");
  auto it = snap->payloads.find(asn);
  if (it == snap->payloads.end())
    return error_response(404, "unknown ASN");
  return json_ok(it->second);
}

Response LgService::handle_assoc(std::string_view rest) const {
  bgp::Asn asn = 0;
  if (!parse_asn(rest, &asn)) return error_response(400, "malformed ASN");
  auto snap = cdn_.get();
  if (!snap) return error_response(503, "no cdn snapshot published yet");
  auto it = snap->payloads.find(asn);
  if (it == snap->payloads.end())
    return error_response(404, "unknown ASN");
  return json_ok(it->second);
}

Response LgService::handle_infer(std::string_view rest) const {
  auto snap = atlas_.get();
  if (!snap) return error_response(503, "no atlas snapshot published yet");

  // Accept a v6 prefix/address or a v4 prefix/address; resolve its origin
  // AS and attach that AS's inference summary.
  bgp::Asn asn = 0;
  std::string route;
  if (auto p6 = net::Prefix6::parse(rest)) {
    auto r = snap->rib.lookup(p6->address());
    if (!r) return error_response(404, "no route for prefix");
    asn = r->origin.asn;
    route = route_json(*r, snap->as_names);
  } else if (auto a6 = net::IPv6Address::parse(rest)) {
    auto r = snap->rib.lookup(*a6);
    if (!r) return error_response(404, "no route for address");
    asn = r->origin.asn;
    route = route_json(*r, snap->as_names);
  } else if (auto p4 = net::Prefix4::parse(rest)) {
    auto r = snap->rib.lookup(p4->address());
    if (!r) return error_response(404, "no route for prefix");
    asn = r->origin.asn;
    route = route_json(*r, snap->as_names);
  } else if (auto a4 = net::IPv4Address::parse(rest)) {
    auto r = snap->rib.lookup(*a4);
    if (!r) return error_response(404, "no route for address");
    asn = r->origin.asn;
    route = route_json(*r, snap->as_names);
  } else {
    return error_response(400, "malformed prefix or address");
  }

  auto it = snap->inference.find(asn);
  if (it == snap->inference.end())
    return error_response(404, "no inference for origin AS");
  return json_ok("{\"snapshot\": " + std::to_string(snap->generation) +
                 ", \"query\": \"" + json_escape(rest) +
                 "\", \"route\": " + route + ", \"inference\": " + it->second +
                 "}");
}

Response LgService::handle_pfx2as(std::string_view rest) const {
  auto snap = atlas_.get();
  if (!snap) return error_response(503, "no atlas snapshot published yet");

  std::string route;
  int family = 0;
  if (auto a6 = net::IPv6Address::parse(rest)) {
    auto r = snap->rib.lookup(*a6);
    if (!r) return error_response(404, "no route for address");
    family = 6;
    route = route_json(*r, snap->as_names);
  } else if (auto a4 = net::IPv4Address::parse(rest)) {
    auto r = snap->rib.lookup(*a4);
    if (!r) return error_response(404, "no route for address");
    family = 4;
    route = route_json(*r, snap->as_names);
  } else {
    return error_response(400, "malformed address");
  }
  return json_ok("{\"snapshot\": " + std::to_string(snap->generation) +
                 ", \"addr\": \"" + json_escape(rest) +
                 "\", \"family\": " + std::to_string(family) +
                 ", \"route\": " + route + "}");
}

}  // namespace dynamips::lg
