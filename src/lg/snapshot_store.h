// snapshot_store.h — RCU-style publication point for finalized studies.
//
// The looking-glass read path (src/lg/service.h) never locks against the
// pipeline: the stream's re-finalization callback builds an immutable
// snapshot off to the side and publish()es it with one atomic pointer
// swap. Readers get() a shared_ptr to whichever generation was current at
// that instant and keep it alive for the duration of their request, so a
// response is always assembled from exactly one generation — there is no
// window in which a reader can observe half of an old snapshot and half of
// a new one, and a publish never waits for readers to drain (the old
// generation is freed by the last shared_ptr that drops it).
//
// C++20's std::atomic<std::shared_ptr> provides the swap where the
// standard library implements it (GCC >= 12); elsewhere a mutex guarding
// only the pointer copy preserves the exact same reader-visible contract
// with a critical section of a few instructions.
#pragma once

#include <memory>
#include <version>

#if defined(__cpp_lib_atomic_shared_ptr)
#include <atomic>
#define DYNAMIPS_LG_ATOMIC_SHARED_PTR 1
#else
#include <mutex>
#define DYNAMIPS_LG_ATOMIC_SHARED_PTR 0
#endif

namespace dynamips::lg {

template <typename T>
class SnapshotStore {
 public:
  /// The current snapshot, or null when nothing has been published yet.
  /// Safe to call from any number of threads concurrently with publish().
  std::shared_ptr<const T> get() const {
#if DYNAMIPS_LG_ATOMIC_SHARED_PTR
    return ptr_.load(std::memory_order_acquire);
#else
    std::lock_guard<std::mutex> lk(mu_);
    return ptr_;
#endif
  }

  /// Swap in a new generation. The previous one stays alive until the last
  /// reader holding it lets go; publish() itself never blocks on readers.
  void publish(std::shared_ptr<const T> next) {
#if DYNAMIPS_LG_ATOMIC_SHARED_PTR
    ptr_.store(std::move(next), std::memory_order_release);
#else
    std::lock_guard<std::mutex> lk(mu_);
    ptr_ = std::move(next);
#endif
  }

 private:
#if DYNAMIPS_LG_ATOMIC_SHARED_PTR
  std::atomic<std::shared_ptr<const T>> ptr_;
#else
  mutable std::mutex mu_;
  std::shared_ptr<const T> ptr_;
#endif
};

}  // namespace dynamips::lg
