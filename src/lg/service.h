// service.h — looking-glass query service over finalized study state.
//
// Serves the paper's outputs live instead of as CSVs: per-AS duration
// ECDF quantiles, pool-boundary / subscriber-prefix inferences, and
// pfx2as longest-prefix lookups, plus health and metrics documents.
//
// Read path: every queryable payload is pre-rendered into an immutable
// `LgSnapshot` when the pipeline publishes a re-finalization (one
// generation = one `StreamStats::refinalizes` tick), and requests only
// ever look up and concatenate strings from the one generation they
// grabbed via `SnapshotStore::get()`. Two consequences the CI soak gates:
// a response is byte-deterministic given (path, generation) — there are
// no torn reads across a concurrent publish — and serving costs no locks
// shared with the pipeline, so millions of cheap GETs never delay a
// re-finalization.
//
// Endpoints (all GET, JSON):
//   /v1/healthz           liveness + per-study generation/batch counters
//                         (always 200 while the server can answer at all)
//   /v1/readyz            readiness: resource-governor state (rss_mb,
//                         disk_free_mb, backlog_batches); 503 + Retry-After
//                         while degraded — point load balancers here, and
//                         liveness probes at /v1/healthz
//   /v1/metricsz          obs metrics registry export (dynamips.metrics.v1)
//   /v1/durations/<asn>   per-AS assignment-duration quantiles (Fig. 1 data)
//   /v1/assoc/<asn>       per-AS CDN association-duration quantiles (Fig. 2)
//   /v1/infer/<prefix>    pool-boundary + subscriber-prefix inference for
//                         the AS originating <prefix> (§5.2/§5.3)
//   /v1/pfx2as/<addr>     longest-prefix match against the study RIB
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "bgp/rib.h"
#include "core/pipeline.h"
#include "lg/http.h"
#include "lg/snapshot_store.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"

namespace dynamips::lg {

/// One immutable, pre-rendered generation of study results. Built off the
/// request path (by the pipeline thread) and shared read-only with every
/// worker; all strings are final JSON fragments.
struct LgSnapshot {
  std::uint64_t generation = 0;  ///< re-finalization ordinal (1-based)
  std::uint64_t batches = 0;     ///< stream batches consumed (0 = one-shot)
  std::uint64_t records = 0;     ///< records behind this generation

  /// Pre-rendered /v1/durations/<asn> (atlas) or /v1/assoc/<asn> (cdn)
  /// bodies, keyed by ASN.
  std::map<bgp::Asn, std::string> payloads;
  /// Pre-rendered inference objects (atlas only), embedded by /v1/infer.
  std::map<bgp::Asn, std::string> inference;
  /// Display names for route results.
  std::map<bgp::Asn, std::string> as_names;
  /// Pre-rendered healthz fragment ({"snapshot": ..., "ases": [...]}).
  std::string health;
  /// LPM substrate for /v1/pfx2as and /v1/infer (atlas only; empty for
  /// cdn snapshots — the CDN study carries no RIB).
  bgp::Rib rib;
};

/// Build an atlas-side snapshot: duration quantiles, inference summaries,
/// and a rebuilt RIB. `generation`/`batches`/`records` come from the
/// stream stats (use 1/0/probes for a one-shot study).
std::shared_ptr<const LgSnapshot> build_atlas_snapshot(
    const core::AtlasStudy& study, std::uint64_t generation,
    std::uint64_t batches, std::uint64_t records);

/// Build a cdn-side snapshot: association-duration quantiles per ASN.
std::shared_ptr<const LgSnapshot> build_cdn_snapshot(
    const core::CdnStudy& study, std::uint64_t generation,
    std::uint64_t batches, std::uint64_t records);

struct ServiceConfig {
  /// Registry backing /v1/metricsz; null serves 503 there.
  obs::MetricsRegistry* metrics = nullptr;
  /// Run parameters stamped into the /v1/metricsz document.
  obs::MetricsMeta meta;
  /// Resource governor backing /v1/readyz; null means readiness degrades
  /// to plain liveness (200 whenever the server can answer).
  core::ResourceGovernor* governor = nullptr;
};

/// Stateless request router over the two snapshot stores. handle() is
/// const and safe to call from any number of worker threads concurrently
/// with publish_atlas()/publish_cdn().
class LgService {
 public:
  explicit LgService(ServiceConfig config = {}) : config_(std::move(config)) {}

  void publish_atlas(std::shared_ptr<const LgSnapshot> snap) {
    atlas_.publish(std::move(snap));
  }
  void publish_cdn(std::shared_ptr<const LgSnapshot> snap) {
    cdn_.publish(std::move(snap));
  }

  /// Route one parsed request to a response. Unknown paths, ASNs absent
  /// from the snapshot, and unrouted addresses are 404; syntactically
  /// invalid ASNs/addresses are 400; queries before the first publish are
  /// 503 (healthz stays 200 — the server itself is up).
  Response handle(const Request& request) const;

 private:
  Response handle_durations(std::string_view rest) const;
  Response handle_assoc(std::string_view rest) const;
  Response handle_infer(std::string_view rest) const;
  Response handle_pfx2as(std::string_view rest) const;
  Response handle_healthz() const;
  Response handle_readyz() const;
  Response handle_metricsz() const;

  ServiceConfig config_;
  SnapshotStore<LgSnapshot> atlas_;
  SnapshotStore<LgSnapshot> cdn_;
};

}  // namespace dynamips::lg
