#include "lg/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "core/failpoint.h"

namespace dynamips::lg {

namespace {

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

LgServer::LgServer(const LgService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  if (config_.threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    config_.threads = hw == 0 ? 2 : hw;
  }
  if (config_.poll_ms == 0) config_.poll_ms = 100;
}

LgServer::~LgServer() { stop(); }

core::Status LgServer::start() {
  if (started_)
    return core::Status(core::StatusCode::kFailedPrecondition,
                        "lg server already started");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1)
    return core::Status(core::StatusCode::kInvalidArgument,
                        "bad bind address: " + config_.bind_address);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return core::Status(core::StatusCode::kInternal,
                        std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    core::Status st(core::StatusCode::kResourceExhausted,
                    "bind " + config_.bind_address + ":" +
                        std::to_string(config_.port) + ": " +
                        std::strerror(errno));
    close_quietly(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    core::Status st(core::StatusCode::kInternal,
                    std::string("listen: ") + std::strerror(errno));
    close_quietly(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);
  else
    port_ = config_.port;

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  workers_.reserve(config_.threads);
  for (unsigned i = 0; i < config_.threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
  return core::Status::Ok();
}

void LgServer::accept_loop() {
  // EINTR discipline (audited for supervised runs, where SIGCHLD/SIGTERM
  // arrive routinely): every poll()/accept()/recv()/send() in this file
  // restarts on EINTR instead of treating it as a connection error.
  pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stopping()) {
    int rv = ::poll(&pfd, 1, static_cast<int>(config_.poll_ms));
    if (rv < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rv == 0 || !(pfd.revents & POLLIN)) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK)
        continue;
      break;  // listener closed or broken
    }
    if (auto fp = core::failpoint("lg.accept"); fp.is_error()) {
      // The connection races shutdown / dies during the TCP handshake:
      // the accept succeeded but the socket is already unusable.
      close_quietly(fd);
      continue;
    }
    if (config_.max_connections > 0 &&
        active_.load(std::memory_order_relaxed) >= config_.max_connections) {
      shed_connection(fd);
      continue;
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++accepted_;
      queue_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void LgServer::shed_connection(int fd) {
  Response r = error_response(503, "server at connection capacity");
  r.extra_headers.push_back({"Retry-After", "1"});
  std::string wire = render_response(r, /*keep_alive=*/false);
  // One non-blocking send: a peer that cannot take the 503 immediately
  // just sees the close — the acceptor never waits on a shed connection.
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  close_quietly(fd);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed;
  }
  if (config_.metrics) config_.metrics->add_counter("lg.shed", 1);
}

void LgServer::worker_loop() {
  ServerStats local;
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(config_.poll_ms),
                         [this] {
                           return !queue_.empty() ||
                                  stop_.load(std::memory_order_relaxed);
                         });
      if (!queue_.empty()) {
        fd = queue_.front();
        queue_.pop_front();
      } else if (stop_.load(std::memory_order_relaxed) || stopping()) {
        break;
      }
    }
    if (fd >= 0) handle_connection(fd, local);
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.connections += local.connections;
  stats_.requests += local.requests;
  stats_.responses_2xx += local.responses_2xx;
  stats_.responses_4xx += local.responses_4xx;
  stats_.responses_5xx += local.responses_5xx;
  stats_.bytes_out += local.bytes_out;
  stats_.slow_client_drops += local.slow_client_drops;
}

bool LgServer::send_with_deadline(int fd, std::string_view data,
                                  bool* timed_out) {
  *timed_out = false;
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t budget = config_.send_timeout_ms;
  auto elapsed_ms = [&]() -> std::uint64_t {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  if (auto fp = core::failpoint("lg.send"); fp) {
    if (fp.is_error()) return false;  // peer vanished mid-response
    if (fp.is_delay()) {
      // A stalled reader: burn the stall against the send budget in
      // poll-sized slices so the deadline and shutdown stay responsive.
      std::uint64_t slept = 0;
      while (slept < fp.delay_ms && !stopping()) {
        std::uint64_t slice = std::min(config_.poll_ms, fp.delay_ms - slept);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        slept += slice;
        if (budget > 0 && elapsed_ms() >= budget) {
          *timed_out = true;
          return false;
        }
      }
      if (stopping()) return false;
    }
  }
  while (!data.empty()) {
    if (stopping()) return false;
    if (budget > 0 && elapsed_ms() >= budget) {
      *timed_out = true;
      return false;
    }
    ssize_t n =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      data.remove_prefix(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel send buffer full — the slow-client case. Wait for POLLOUT
      // in slices bounded by both poll_ms and the remaining budget.
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      std::uint64_t wait = config_.poll_ms;
      if (budget > 0) {
        std::uint64_t used = elapsed_ms();
        wait = std::min(wait, budget > used ? budget - used : 0);
      }
      int rv = ::poll(&pfd, 1, static_cast<int>(wait));
      if (rv < 0 && errno != EINTR) return false;
      continue;
    }
    return false;  // peer closed or hard error
  }
  return true;
}

void LgServer::handle_connection(int fd, ServerStats& stats) {
  ++stats.connections;
  std::string buffer;
  bool open = true;
  while (open && !stopping()) {
    // Read until the head terminator; a connection is allowed to sit idle
    // (keep-alive) up to idle_timeout_ms, polled in poll_ms slices so
    // shutdown stays responsive.
    std::size_t head_end;
    std::uint64_t idle_ms = 0;
    for (;;) {
      head_end = buffer.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        std::size_t lf = buffer.find("\n\n");
        if (lf != std::string::npos) head_end = lf;
      }
      if (head_end != std::string::npos) break;
      if (buffer.size() > kMaxHeadBytes) {
        Response r = error_response(431, "request head too large");
        std::string wire = render_response(r, false);
        ++stats.requests;
        ++stats.responses_4xx;
        bool timed_out = false;
        if (send_with_deadline(fd, wire, &timed_out)) {
          stats.bytes_out += wire.size();
        } else if (timed_out) {
          ++stats.slow_client_drops;
          if (config_.metrics)
            config_.metrics->add_counter("lg.slow_client_drops", 1);
        }
        open = false;
        break;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      int rv = ::poll(&pfd, 1, static_cast<int>(config_.poll_ms));
      if (stopping()) {
        open = false;
        break;
      }
      if (rv < 0) {
        if (errno == EINTR) continue;
        open = false;
        break;
      }
      if (rv == 0) {
        idle_ms += config_.poll_ms;
        // Mid-request bytes reset nothing: the idle budget covers the
        // whole head, which for our tiny requests is indistinguishable.
        if (idle_ms >= config_.idle_timeout_ms) {
          open = false;
          break;
        }
        continue;
      }
      if (auto fp = core::failpoint("lg.recv"); fp.is_error()) {
        open = false;  // injected mid-request connection loss
        break;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        open = false;  // peer closed or error
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      idle_ms = 0;
    }
    if (!open) break;

    std::size_t sep = buffer.compare(head_end, 4, "\r\n\r\n") == 0 ? 4 : 2;
    std::string head = buffer.substr(0, head_end);
    buffer.erase(0, head_end + sep);

    Response error;
    std::optional<Request> req = parse_request_head(head, &error);
    Response resp = req ? service_.handle(*req) : error;
    bool keep_alive = req && req->keep_alive && !stopping();
    std::string wire = render_response(resp, keep_alive);

    ++stats.requests;
    if (resp.status < 400)
      ++stats.responses_2xx;
    else if (resp.status < 500)
      ++stats.responses_4xx;
    else
      ++stats.responses_5xx;
    bool timed_out = false;
    if (!send_with_deadline(fd, wire, &timed_out)) {
      if (timed_out) {
        ++stats.slow_client_drops;
        if (config_.metrics)
          config_.metrics->add_counter("lg.slow_client_drops", 1);
      }
      break;
    }
    stats.bytes_out += wire.size();
    if (!keep_alive) break;
  }
  close_quietly(fd);
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void LgServer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  // Closing the listener after the acceptor exits keeps poll() away from a
  // recycled fd number.
  close_quietly(listen_fd_);
  listen_fd_ = -1;
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Connections accepted but never claimed by a worker.
  for (int fd : queue_) {
    close_quietly(fd);
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  queue_.clear();
  started_ = false;

  if (config_.metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    config_.metrics->add_counter("lg.connections", stats_.connections);
    config_.metrics->add_counter("lg.requests", stats_.requests);
    config_.metrics->add_counter("lg.responses_2xx", stats_.responses_2xx);
    config_.metrics->add_counter("lg.responses_4xx", stats_.responses_4xx);
    config_.metrics->add_counter("lg.responses_5xx", stats_.responses_5xx);
    config_.metrics->add_counter("lg.bytes_out", stats_.bytes_out);
  }
}

ServerStats LgServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LgServer::serve_until_shutdown() {
  // interruptible_sleep_ms (not a plain sleep_for): under --supervise,
  // SIGTERM/SIGCHLD arrive routinely, and this loop must notice the token
  // promptly rather than ride out a signal-interrupted sleep.
  while (!stopping()) core::interruptible_sleep_ms(config_.poll_ms, config_.token);
  stop();
}

}  // namespace dynamips::lg
