// prefix_trie.h — path-compressed binary radix (Patricia) trie keyed by
// bit-string prefixes up to 128 bits.
//
// This is the lookup substrate shared by the BGP RIB (pfx2as), the pool
// inference, and the hitlist scoping logic: insert (prefix, value) pairs,
// then ask for the longest matching prefix of a full address. Keys are
// left-aligned in a U128 (bit 0 = most significant), which lets IPv4 (32-bit)
// and IPv6 (128-bit) share one implementation.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "netaddr/ipv4.h"
#include "netaddr/ipv6.h"
#include "netaddr/prefix.h"
#include "netaddr/u128.h"

namespace dynamips::rtrie {

using net::U128;

/// Left-aligned 128-bit key for an IPv4 address (its 32 bits become the most
/// significant bits of the key).
constexpr U128 key_of(net::IPv4Address a) {
  return U128{std::uint64_t(a.value()) << 32, 0};
}

/// Left-aligned key for an IPv6 address (identity).
constexpr U128 key_of(const net::IPv6Address& a) { return a.bits(); }

constexpr U128 key_of(const net::Prefix4& p) { return key_of(p.address()); }
constexpr U128 key_of(const net::Prefix6& p) { return key_of(p.address()); }

/// A match returned by longest-prefix lookup: the matched prefix (left-
/// aligned bits + length) and a pointer to its value (valid until the next
/// mutation of the trie).
template <typename V>
struct TrieMatch {
  U128 prefix_bits;
  unsigned prefix_len;
  const V* value;
};

/// Path-compressed binary trie mapping bit-prefixes to values.
///
/// Invariants (checked by the test suite's property sweep):
///  * every stored edge label is truncated to its edge length;
///  * no internal node is both valueless and single-childed (erase prunes);
///  * `size()` equals the number of stored values.
template <typename V>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  PrefixTrie(PrefixTrie&&) noexcept = default;
  PrefixTrie& operator=(PrefixTrie&&) noexcept = default;
  PrefixTrie(const PrefixTrie&) = delete;
  PrefixTrie& operator=(const PrefixTrie&) = delete;

  /// Number of stored (prefix, value) pairs.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Insert or overwrite the value at (bits, len). `bits` is left-aligned;
  /// bits below `len` are ignored. Returns true if a new entry was created.
  bool insert(U128 bits, unsigned len, V value) {
    assert(len <= 128);
    bits = bits & net::mask128(len);
    Node* cur = root_.get();
    unsigned depth = 0;
    while (true) {
      if (depth == len) {
        bool fresh = !cur->value.has_value();
        cur->value = std::move(value);
        if (fresh) ++size_;
        return fresh;
      }
      bool b = bits.bit_msb(depth);
      std::unique_ptr<Node>& slot = cur->child[b];
      U128 rem = bits << depth;
      if (!slot) {
        slot = std::make_unique<Node>();
        slot->edge_bits = rem & net::mask128(len - depth);
        slot->edge_len = len - depth;
        slot->value = std::move(value);
        ++size_;
        return true;
      }
      unsigned want = len - depth;
      unsigned cl = match_len(rem, slot->edge_bits,
                              want < slot->edge_len ? want : slot->edge_len);
      if (cl == slot->edge_len) {
        depth += cl;
        cur = slot.get();
        continue;
      }
      // The new prefix diverges inside slot's edge: split the edge at cl.
      auto split = std::make_unique<Node>();
      split->edge_bits = slot->edge_bits & net::mask128(cl);
      split->edge_len = cl;
      bool old_b = slot->edge_bits.bit_msb(cl);
      slot->edge_bits =
          (slot->edge_bits << cl) & net::mask128(slot->edge_len - cl);
      slot->edge_len -= cl;
      split->child[old_b] = std::move(slot);
      slot = std::move(split);
      if (depth + cl == len) {
        slot->value = std::move(value);
        ++size_;
        return true;
      }
      bool new_b = rem.bit_msb(cl);
      auto leaf = std::make_unique<Node>();
      leaf->edge_bits = (rem << cl) & net::mask128(len - depth - cl);
      leaf->edge_len = len - depth - cl;
      leaf->value = std::move(value);
      slot->child[new_b] = std::move(leaf);
      ++size_;
      return true;
    }
  }

  /// Exact-match lookup of the value stored at (bits, len), or nullptr.
  const V* find(U128 bits, unsigned len) const {
    bits = bits & net::mask128(len);
    const Node* cur = root_.get();
    unsigned depth = 0;
    while (depth < len) {
      const Node* next = cur->child[bits.bit_msb(depth)].get();
      if (!next) return nullptr;
      U128 rem = bits << depth;
      unsigned want = len - depth;
      if (next->edge_len > want) return nullptr;
      if (match_len(rem, next->edge_bits, next->edge_len) != next->edge_len)
        return nullptr;
      depth += next->edge_len;
      cur = next;
    }
    return cur->value ? &*cur->value : nullptr;
  }

  V* find(U128 bits, unsigned len) {
    return const_cast<V*>(std::as_const(*this).find(bits, len));
  }

  /// Longest-prefix match for a full 128-bit key. Returns the most specific
  /// stored prefix containing the key, or nullopt when none matches.
  std::optional<TrieMatch<V>> longest_match(U128 key) const {
    const Node* cur = root_.get();
    unsigned depth = 0;
    std::optional<TrieMatch<V>> best;
    if (cur->value) best = TrieMatch<V>{U128{}, 0, &*cur->value};
    while (depth < 128) {
      const Node* next = cur->child[key.bit_msb(depth)].get();
      if (!next) break;
      U128 rem = key << depth;
      unsigned avail = 128 - depth;
      if (next->edge_len > avail) break;
      if (match_len(rem, next->edge_bits, next->edge_len) != next->edge_len)
        break;
      depth += next->edge_len;
      cur = next;
      if (cur->value)
        best = TrieMatch<V>{key & net::mask128(depth), depth, &*cur->value};
    }
    return best;
  }

  /// Remove the value at (bits, len). Returns true if an entry was removed.
  /// Pruning restores the compression invariant.
  bool erase(U128 bits, unsigned len) {
    bits = bits & net::mask128(len);
    bool removed = erase_rec(root_.get(), bits, len, 0);
    if (removed) --size_;
    return removed;
  }

  /// Visit every stored (prefix bits, prefix length, value) in lexicographic
  /// (trie) order.
  void visit(const std::function<void(U128, unsigned, const V&)>& fn) const {
    visit_rec(root_.get(), U128{}, 0, fn);
  }

  /// Remove all entries.
  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    U128 edge_bits{};       // label of the edge leading here, left-aligned
    unsigned edge_len = 0;  // number of meaningful bits in edge_bits
    std::optional<V> value;
    std::unique_ptr<Node> child[2];

    int child_count() const {
      return int(child[0] != nullptr) + int(child[1] != nullptr);
    }
  };

  static unsigned match_len(U128 a, U128 b, unsigned limit) {
    U128 x = a ^ b;
    unsigned m = unsigned(x.countl_zero());
    return m < limit ? m : limit;
  }

  // Merge a valueless single-child node with its child (except the root).
  static void maybe_merge(Node* node) {
    if (node->value || node->child_count() != 1) return;
    std::unique_ptr<Node>& only =
        node->child[node->child[0] ? 0 : 1];
    // Concatenate edges: node keeps its label followed by the child's.
    U128 merged = node->edge_bits | (only->edge_bits >> node->edge_len);
    unsigned merged_len = node->edge_len + only->edge_len;
    Node* c = only.get();
    node->edge_bits = merged & net::mask128(merged_len);
    node->edge_len = merged_len;
    node->value = std::move(c->value);
    std::unique_ptr<Node> keep0 = std::move(c->child[0]);
    std::unique_ptr<Node> keep1 = std::move(c->child[1]);
    only.reset();
    node->child[0] = std::move(keep0);
    node->child[1] = std::move(keep1);
  }

  bool erase_rec(Node* cur, U128 bits, unsigned len, unsigned depth) {
    if (depth == len) {
      if (!cur->value) return false;
      cur->value.reset();
      return true;
    }
    std::unique_ptr<Node>& slot = cur->child[bits.bit_msb(depth)];
    if (!slot) return false;
    U128 rem = bits << depth;
    unsigned want = len - depth;
    if (slot->edge_len > want) return false;
    if (match_len(rem, slot->edge_bits, slot->edge_len) != slot->edge_len)
      return false;
    if (!erase_rec(slot.get(), bits, len, depth + slot->edge_len))
      return false;
    // Prune or merge the child, then consider merging ourselves (our parent
    // handles the root case by never merging it).
    if (!slot->value && slot->child_count() == 0) {
      slot.reset();
    } else {
      maybe_merge(slot.get());
    }
    return true;
  }

  void visit_rec(const Node* cur, U128 prefix, unsigned depth,
                 const std::function<void(U128, unsigned, const V&)>& fn)
      const {
    if (cur->value) fn(prefix, depth, *cur->value);
    for (int b = 0; b < 2; ++b) {
      const Node* c = cur->child[b].get();
      if (!c) continue;
      U128 child_prefix = prefix | (c->edge_bits >> depth);
      visit_rec(c, child_prefix, depth + c->edge_len, fn);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

/// Convenience: a set of prefixes (trie with unit values).
template <typename Tag = void>
class PrefixSet {
 public:
  bool insert(U128 bits, unsigned len) { return trie_.insert(bits, len, true); }
  bool contains(U128 bits, unsigned len) const {
    return trie_.find(bits, len) != nullptr;
  }
  bool contains_superprefix_of(U128 key) const {
    return trie_.longest_match(key).has_value();
  }
  std::size_t size() const { return trie_.size(); }

 private:
  PrefixTrie<bool> trie_;
};

}  // namespace dynamips::rtrie
