// metrics_json.h — stable, versioned JSON export of a metrics snapshot.
//
// The document is the contract between the pipeline and its consumers
// (tools/check_metrics.py, CI artifacts, future BENCH_*.json trajectories):
//
//   {
//     "schema": "dynamips.metrics.v1",
//     "meta": {"binary": ..., "scale": ..., "seed": ..., "window_hours":
//              ..., "threads": ...},
//     "counters":   {"name": uint, ...},            # thread-invariant
//     "gauges":     {"name": double, ...},
//     "phases":     {"name": {"count": uint, "total_s": double,
//                             "min_s": double, "max_s": double}, ...},
//     "histograms": {"name": {"lo_exp": d, "hi_exp": d,
//                             "bins_per_decade": i, "total": uint,
//                             "buckets": {"<index>": uint, ...}}, ...}
//   }
//
// Keys are emitted in sorted order and numbers in a fixed format, so two
// exports of equal state are byte-identical. Schema changes bump the
// version string; consumers reject documents whose schema they don't know.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace dynamips::obs {

/// Version tag of the JSON layout above.
inline constexpr const char* kMetricsSchema = "dynamips.metrics.v1";

/// Run parameters stamped into the document's "meta" object.
struct MetricsMeta {
  std::string binary;
  double scale = 0;
  std::uint64_t seed = 0;
  std::uint64_t window_hours = 0;
  unsigned threads = 0;
};

/// Serialize a snapshot (plus run metadata) to the schema above.
std::string metrics_to_json(const MetricsSink& snapshot,
                            const MetricsMeta& meta);

/// Write metrics_to_json() output to `path`. Returns false on I/O failure.
bool write_metrics_json(const std::string& path, const MetricsSink& snapshot,
                        const MetricsMeta& meta);

}  // namespace dynamips::obs
