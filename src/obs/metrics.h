// metrics.h — lightweight, thread-aware pipeline observability.
//
// The study pipeline shards work across threads and reduces per-shard
// analyzer state in index order (core/parallel.h). Metrics follow the exact
// same discipline: each shard records into a private `MetricsSink` (no
// locks, no atomics on the hot path), sinks merge pairwise during the
// ordered reduction, and the final sink is absorbed into a process-wide
// `MetricsRegistry` under a mutex. Because metric state is fully separate
// from analyzer state, enabling metrics can never perturb results — and
// every counter/histogram is a shard-order-independent sum, so counts are
// identical for every thread setting (timings, of course, are not).
//
// Value types:
//   Counter    monotonic uint64 sum (thread-invariant; CI-gated)
//   Gauge      last-written double (shard counts, imbalance, peak RSS)
//   Histogram  log10-bucketed uint64 counts, same shape as stats/loghist.h
//   PhaseStats timing aggregate (count / total / min / max nanoseconds)
//   PhaseTimer RAII span recorder feeding a PhaseStats
#pragma once

#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dynamips::io::ckpt {
class Writer;
class Reader;
}  // namespace dynamips::io::ckpt

namespace dynamips::obs {

/// Monotonic nanosecond clock for phase spans.
inline std::uint64_t now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

/// Monotonically increasing event count. Sums are associative and
/// commutative, so merged totals are independent of shard count and order.
struct Counter {
  std::uint64_t value = 0;

  void add(std::uint64_t n = 1) { value += n; }
  void merge(const Counter& other) { value += other.value; }
};

/// Point-in-time measurement (shard count, imbalance ratio, peak RSS).
/// Merge is last-writer-wins in reduction order; gauges are deliberately
/// excluded from the thread-invariance guarantee.
struct Gauge {
  double value = 0;
  bool set_flag = false;

  void set(double v) {
    value = v;
    set_flag = true;
  }
  void merge(const Gauge& other) {
    if (other.set_flag) {
      value = other.value;
      set_flag = true;
    }
  }
};

/// Log10-bucketed histogram with integer counts, covering
/// [10^lo_exp, 10^hi_exp) at `bins_per_decade` resolution (the binning
/// shape of stats/loghist.h, with exact uint64 counts so merged bucket
/// sums stay thread-invariant). Out-of-range samples clamp into the
/// first/last bucket.
class Histogram {
 public:
  Histogram() : Histogram(0, 6, 5) {}
  Histogram(double lo_exp, double hi_exp, int bins_per_decade)
      : lo_exp_(lo_exp),
        hi_exp_(hi_exp),
        per_decade_(bins_per_decade),
        buckets_(std::size_t((hi_exp - lo_exp) * bins_per_decade) + 1, 0) {}

  void record(double value, std::uint64_t count = 1) {
    buckets_[bucket_of(value)] += count;
    total_ += count;
  }

  /// Absorb another histogram. Precondition: identical binning.
  void merge(const Histogram& other) {
    assert(buckets_.size() == other.buckets_.size() &&
           lo_exp_ == other.lo_exp_ && per_decade_ == other.per_decade_);
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      buckets_[i] += other.buckets_[i];
    total_ += other.total_;
  }

  double lo_exp() const { return lo_exp_; }
  double hi_exp() const { return hi_exp_; }
  int bins_per_decade() const { return per_decade_; }
  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  bool operator==(const Histogram& other) const {
    return lo_exp_ == other.lo_exp_ && hi_exp_ == other.hi_exp_ &&
           per_decade_ == other.per_decade_ && total_ == other.total_ &&
           buckets_ == other.buckets_;
  }

  /// Checkpoint serialization (io/checkpoint.h): binning parameters plus
  /// exact bucket counts. load() rejects inconsistent bucket counts.
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

 private:
  std::size_t bucket_of(double value) const {
    if (value < 1e-300) return 0;
    double pos = (std::log10(value) - lo_exp_) * per_decade_;
    if (pos < 0) return 0;
    std::size_t i = std::size_t(pos);
    return i >= buckets_.size() ? buckets_.size() - 1 : i;
  }

  double lo_exp_, hi_exp_;
  int per_decade_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Timing aggregate for one named phase: span count, summed duration, and
/// min/max span. Counts are thread-invariant when spans are recorded per
/// work item; totals and extrema are wall-clock and vary run to run.
struct PhaseStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = UINT64_MAX;
  std::uint64_t max_ns = 0;

  void record(std::uint64_t ns) {
    ++count;
    total_ns += ns;
    if (ns < min_ns) min_ns = ns;
    if (ns > max_ns) max_ns = ns;
  }
  void merge(const PhaseStats& other) {
    count += other.count;
    total_ns += other.total_ns;
    if (other.min_ns < min_ns) min_ns = other.min_ns;
    if (other.max_ns > max_ns) max_ns = other.max_ns;
  }
};

/// An unsynchronized, shard-local buffer of named metrics. Satisfies the
/// core::MergeableAnalyzer concept (merge + finalize) so a sink rides
/// through the same ordered reduction as the analyzers. References
/// returned by the accessors are stable (node-based map), so hot loops
/// should hoist them out:
///
///   obs::Counter& c = sink.counter("atlas.echo_records");
///   for (...) c.add(n);
class MetricsSink {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Creates the histogram on first use; later calls (and merges) must use
  /// the same binning.
  Histogram& histogram(std::string_view name, double lo_exp = 0,
                       double hi_exp = 6, int bins_per_decade = 5);
  PhaseStats& phase(std::string_view name);

  /// Absorb another sink (shard reduction). The argument is consumed.
  void merge(MetricsSink&& other);
  void finalize() {}

  /// Checkpoint serialization (io/checkpoint.h): all four value maps,
  /// bit-exact (gauge doubles round-trip via their bit pattern).
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           phases_.empty();
  }

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, PhaseStats, std::less<>>& phases() const {
    return phases_;
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, PhaseStats, std::less<>> phases_;
};

/// RAII span recorder: measures construction-to-stop (or destruction) and
/// records it into a PhaseStats. A null target makes the timer a no-op, so
/// callers can write `PhaseTimer t(enabled ? &stats : nullptr)` and pay
/// nothing when metrics are off.
class PhaseTimer {
 public:
  explicit PhaseTimer(PhaseStats* target)
      : target_(target), start_ns_(target ? now_ns() : 0) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { stop(); }

  void stop() {
    if (!target_) return;
    target_->record(now_ns() - start_ns_);
    target_ = nullptr;
  }

 private:
  PhaseStats* target_;
  std::uint64_t start_ns_;
};

/// Process-wide, mutex-guarded aggregation point. The hot path never
/// touches it: shards record into private MetricsSinks and the pipeline
/// absorbs the reduced sink once per study. Tools/tests may also construct
/// private registries.
class MetricsRegistry {
 public:
  /// The process-wide instance used by the bench harness and study driver.
  static MetricsRegistry& global();

  /// Absorb a sink's contents. Thread-safe; the sink is consumed.
  void merge(MetricsSink&& sink);

  /// Point updates for harness-level metrics (study wall clock, peak RSS).
  void add_counter(std::string_view name, std::uint64_t n);
  void set_gauge(std::string_view name, double value);
  void record_phase(std::string_view name, std::uint64_t ns);

  /// Copy of the current aggregate state.
  MetricsSink snapshot() const;

  bool empty() const;

  /// Drop all recorded metrics (tests; multi-run tools).
  void reset();

 private:
  mutable std::mutex mu_;
  MetricsSink sink_;
};

/// High-water-mark resident set size of this process, in bytes (0 when the
/// platform offers no getrusage equivalent).
std::uint64_t peak_rss_bytes();

}  // namespace dynamips::obs
