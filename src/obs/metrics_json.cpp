#include "obs/metrics_json.h"

#include <cstdio>

#include "io/atomic_file.h"

namespace dynamips::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

double ns_to_s(std::uint64_t ns) { return double(ns) / 1e9; }

/// Emit `"name": <value(item)>` pairs for every map entry, comma-joined.
template <typename Map, typename Fn>
void append_object(std::string& out, const char* key, const Map& map,
                   Fn&& value) {
  append_escaped(out, key);
  out += ": {";
  bool first = true;
  for (const auto& [name, item] : map) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    value(out, item);
  }
  out += '}';
}

}  // namespace

std::string metrics_to_json(const MetricsSink& snapshot,
                            const MetricsMeta& meta) {
  std::string out;
  out.reserve(4096);
  out += "{\n";

  append_escaped(out, "schema");
  out += ": ";
  append_escaped(out, kMetricsSchema);
  out += ",\n";

  append_escaped(out, "meta");
  out += ": {";
  append_escaped(out, "binary");
  out += ": ";
  append_escaped(out, meta.binary);
  out += ", ";
  append_escaped(out, "scale");
  out += ": ";
  append_double(out, meta.scale);
  out += ", ";
  append_escaped(out, "seed");
  out += ": ";
  append_u64(out, meta.seed);
  out += ", ";
  append_escaped(out, "window_hours");
  out += ": ";
  append_u64(out, meta.window_hours);
  out += ", ";
  append_escaped(out, "threads");
  out += ": ";
  append_u64(out, meta.threads);
  out += "},\n";

  append_object(out, "counters", snapshot.counters(),
                [](std::string& o, const Counter& c) {
                  append_u64(o, c.value);
                });
  out += ",\n";

  append_object(out, "gauges", snapshot.gauges(),
                [](std::string& o, const Gauge& g) {
                  append_double(o, g.value);
                });
  out += ",\n";

  append_object(out, "phases", snapshot.phases(),
                [](std::string& o, const PhaseStats& p) {
                  o += "{\"count\": ";
                  append_u64(o, p.count);
                  o += ", \"total_s\": ";
                  append_double(o, ns_to_s(p.total_ns));
                  o += ", \"min_s\": ";
                  append_double(o, p.count ? ns_to_s(p.min_ns) : 0.0);
                  o += ", \"max_s\": ";
                  append_double(o, ns_to_s(p.max_ns));
                  o += '}';
                });
  out += ",\n";

  append_object(out, "histograms", snapshot.histograms(),
                [](std::string& o, const Histogram& h) {
                  o += "{\"lo_exp\": ";
                  append_double(o, h.lo_exp());
                  o += ", \"hi_exp\": ";
                  append_double(o, h.hi_exp());
                  o += ", \"bins_per_decade\": ";
                  append_u64(o, std::uint64_t(h.bins_per_decade()));
                  o += ", \"total\": ";
                  append_u64(o, h.total());
                  o += ", \"buckets\": {";
                  bool first = true;
                  for (std::size_t i = 0; i < h.buckets().size(); ++i) {
                    if (h.buckets()[i] == 0) continue;  // sparse
                    if (!first) o += ", ";
                    first = false;
                    o += '"';
                    o += std::to_string(i);
                    o += "\": ";
                    append_u64(o, h.buckets()[i]);
                  }
                  o += "}}";
                });
  out += "\n}\n";
  return out;
}

bool write_metrics_json(const std::string& path, const MetricsSink& snapshot,
                        const MetricsMeta& meta) {
  // tmp + rename: a consumer polling the path never reads a torn document,
  // and a crash mid-write leaves any previous document intact.
  return io::write_file_atomic(path, metrics_to_json(snapshot, meta)).ok();
}

}  // namespace dynamips::obs
