#include "obs/metrics.h"

#include "io/checkpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dynamips::obs {

namespace {

/// map::try_emplace with a string_view key (the maps use transparent
/// comparators for lookups, but insertion still needs an owning string).
template <typename Map>
typename Map::mapped_type& named(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it != map.end()) return it->second;
  return map.emplace(std::string(name), typename Map::mapped_type{})
      .first->second;
}

}  // namespace

Counter& MetricsSink::counter(std::string_view name) {
  return named(counters_, name);
}

Gauge& MetricsSink::gauge(std::string_view name) {
  return named(gauges_, name);
}

Histogram& MetricsSink::histogram(std::string_view name, double lo_exp,
                                  double hi_exp, int bins_per_decade) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(lo_exp, hi_exp, bins_per_decade))
      .first->second;
}

PhaseStats& MetricsSink::phase(std::string_view name) {
  return named(phases_, name);
}

void Histogram::save(io::ckpt::Writer& w) const {
  w.f64(lo_exp_);
  w.f64(hi_exp_);
  w.u32(std::uint32_t(per_decade_));
  w.u64(total_);
  w.u64(buckets_.size());
  for (std::uint64_t b : buckets_) w.u64(b);
}

bool Histogram::load(io::ckpt::Reader& r) {
  lo_exp_ = r.f64();
  hi_exp_ = r.f64();
  per_decade_ = int(r.u32());
  total_ = r.u64();
  std::uint64_t n = r.size();
  if (!r.ok()) return false;
  // The bucket count is a function of the binning parameters; a mismatch
  // means the payload is inconsistent, not merely from another config.
  if (per_decade_ < 1 || !(hi_exp_ > lo_exp_) ||
      n != std::size_t((hi_exp_ - lo_exp_) * per_decade_) + 1)
    return false;
  buckets_.assign(std::size_t(n), 0);
  for (std::uint64_t& b : buckets_) b = r.u64();
  return r.ok();
}

void MetricsSink::save(io::ckpt::Writer& w) const {
  w.u64(counters_.size());
  for (const auto& [name, c] : counters_) {
    w.str(name);
    w.u64(c.value);
  }
  w.u64(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    w.str(name);
    w.f64(g.value);
    w.u8(g.set_flag ? 1 : 0);
  }
  w.u64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    w.str(name);
    h.save(w);
  }
  w.u64(phases_.size());
  for (const auto& [name, p] : phases_) {
    w.str(name);
    w.u64(p.count);
    w.u64(p.total_ns);
    w.u64(p.min_ns);
    w.u64(p.max_ns);
  }
}

bool MetricsSink::load(io::ckpt::Reader& r) {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  phases_.clear();
  std::uint64_t n_counters = r.size();
  for (std::uint64_t i = 0; i < n_counters && r.ok(); ++i) {
    std::string name = r.str();
    counters_[name].value = r.u64();
  }
  std::uint64_t n_gauges = r.size();
  for (std::uint64_t i = 0; i < n_gauges && r.ok(); ++i) {
    std::string name = r.str();
    Gauge& g = gauges_[name];
    g.value = r.f64();
    std::uint8_t flag = r.u8();
    if (flag > 1) return false;
    g.set_flag = flag != 0;
  }
  std::uint64_t n_histograms = r.size();
  for (std::uint64_t i = 0; i < n_histograms && r.ok(); ++i) {
    std::string name = r.str();
    if (!histograms_[name].load(r)) return false;
  }
  std::uint64_t n_phases = r.size();
  for (std::uint64_t i = 0; i < n_phases && r.ok(); ++i) {
    std::string name = r.str();
    PhaseStats& p = phases_[name];
    p.count = r.u64();
    p.total_ns = r.u64();
    p.min_ns = r.u64();
    p.max_ns = r.u64();
  }
  return r.ok();
}

void MetricsSink::merge(MetricsSink&& other) {
  for (auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      histograms_.emplace(name, std::move(h));
    else
      it->second.merge(h);
  }
  for (auto& [name, p] : other.phases_) phases_[name].merge(p);
  other = MetricsSink{};
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::merge(MetricsSink&& sink) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_.merge(std::move(sink));
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_.counter(name).add(n);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_.gauge(name).set(value);
}

void MetricsRegistry::record_phase(std::string_view name, std::uint64_t ns) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_.phase(name).record(ns);
}

MetricsSink MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sink_;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sink_.empty();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  sink_ = MetricsSink{};
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return std::uint64_t(usage.ru_maxrss);  // already bytes on macOS
#else
  return std::uint64_t(usage.ru_maxrss) * 1024;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace dynamips::obs
