#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dynamips::obs {

namespace {

/// map::try_emplace with a string_view key (the maps use transparent
/// comparators for lookups, but insertion still needs an owning string).
template <typename Map>
typename Map::mapped_type& named(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it != map.end()) return it->second;
  return map.emplace(std::string(name), typename Map::mapped_type{})
      .first->second;
}

}  // namespace

Counter& MetricsSink::counter(std::string_view name) {
  return named(counters_, name);
}

Gauge& MetricsSink::gauge(std::string_view name) {
  return named(gauges_, name);
}

Histogram& MetricsSink::histogram(std::string_view name, double lo_exp,
                                  double hi_exp, int bins_per_decade) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(lo_exp, hi_exp, bins_per_decade))
      .first->second;
}

PhaseStats& MetricsSink::phase(std::string_view name) {
  return named(phases_, name);
}

void MetricsSink::merge(MetricsSink&& other) {
  for (auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      histograms_.emplace(name, std::move(h));
    else
      it->second.merge(h);
  }
  for (auto& [name, p] : other.phases_) phases_[name].merge(p);
  other = MetricsSink{};
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::merge(MetricsSink&& sink) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_.merge(std::move(sink));
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_.counter(name).add(n);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_.gauge(name).set(value);
}

void MetricsRegistry::record_phase(std::string_view name, std::uint64_t ns) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_.phase(name).record(ns);
}

MetricsSink MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sink_;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sink_.empty();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  sink_ = MetricsSink{};
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return std::uint64_t(usage.ru_maxrss);  // already bytes on macOS
#else
  return std::uint64_t(usage.ru_maxrss) * 1024;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace dynamips::obs
