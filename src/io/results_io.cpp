#include "io/results_io.h"

#include <ostream>

namespace dynamips::io {

namespace {

const std::string& name_of(const std::map<bgp::Asn, std::string>& names,
                           bgp::Asn asn) {
  static const std::string kUnknown = "unknown";
  auto it = names.find(asn);
  return it == names.end() ? kUnknown : it->second;
}

void write_one_curve(std::ostream& os, const std::string& as_name,
                     const char* split,
                     const stats::TotalTimeFraction& ttf) {
  if (ttf.empty()) return;
  auto thresholds = stats::fig1_thresholds();
  auto curve = ttf.cumulative(thresholds);
  for (std::size_t i = 0; i < thresholds.size(); ++i)
    os << as_name << ',' << split << ',' << thresholds[i] << ',' << curve[i]
       << '\n';
}

}  // namespace

void write_duration_curves_csv(std::ostream& os,
                               const core::AtlasStudy& study) {
  os << "as,split,threshold_hours,cumulative_ttf\n";
  for (const auto& [asn, d] : study.durations) {
    const std::string& name = name_of(study.as_names, asn);
    write_one_curve(os, name, "v4_nds", d.v4_nds);
    write_one_curve(os, name, "v4_ds", d.v4_ds);
    write_one_curve(os, name, "v6", d.v6);
  }
}

void write_cpl_csv(std::ostream& os, const core::AtlasStudy& study) {
  os << "as,cpl,changes,probes\n";
  for (const auto& [asn, s] : study.spatial) {
    const std::string& name = name_of(study.as_names, asn);
    for (int c = 0; c <= 64; ++c) {
      if (s.cpl.changes[std::size_t(c)] == 0) continue;
      os << name << ',' << c << ',' << s.cpl.changes[std::size_t(c)] << ','
         << s.cpl.probes[std::size_t(c)] << '\n';
    }
  }
}

void write_bgp_moves_csv(std::ostream& os, const core::AtlasStudy& study) {
  os << "as,pct_diff_24,pct_diff_bgp_v4,pct_diff_bgp_v6\n";
  for (const auto& [asn, s] : study.spatial) {
    os << name_of(study.as_names, asn) << ',' << s.pct_v4_diff_24() << ','
       << s.pct_v4_diff_bgp() << ',' << s.pct_v6_diff_bgp() << '\n';
  }
}

void write_inference_csv(std::ostream& os, const core::AtlasStudy& study) {
  os << "as,inferred_len,probes\n";
  for (const auto& [asn, infs] : study.subscriber_inference) {
    std::map<int, int> hist;
    for (const auto& inf : infs) ++hist[inf.inferred_len];
    for (const auto& [len, count] : hist)
      os << name_of(study.as_names, asn) << ',' << len << ',' << count
         << '\n';
  }
}

void write_assoc_durations_csv(std::ostream& os,
                               const core::CdnStudy& study) {
  os << "asn,name,mobile,duration_days\n";
  for (const auto& [asn, stats] : study.analyzer.by_asn()) {
    static const std::string kUnknown = "?";
    auto it = study.asn_names.find(asn);
    const std::string& name =
        it == study.asn_names.end() ? kUnknown : it->second;
    for (double d : stats.durations_days)
      os << asn << ',' << name << ',' << (stats.mobile ? 1 : 0) << ',' << d
         << '\n';
  }
}

void write_degrees_csv(std::ostream& os, const core::CdnStudy& study) {
  os << "degree,mobile\n";
  for (const auto& [degree, mobile] : study.analyzer.degrees())
    os << degree << ',' << (mobile ? 1 : 0) << '\n';
}

void write_zero_boundaries_csv(std::ostream& os,
                               const core::CdnStudy& study) {
  os << "registry,mobile,boundary,fraction,count\n";
  for (const auto& [cls, z] : study.analyzer.zero_counts()) {
    for (auto boundary :
         {core::ZeroBoundary::kNone, core::ZeroBoundary::k60,
          core::ZeroBoundary::k56, core::ZeroBoundary::k52,
          core::ZeroBoundary::k48}) {
      os << bgp::registry_name(cls.registry) << ','
         << (cls.mobile ? 1 : 0) << ',' << core::zero_boundary_name(boundary)
         << ',' << z.fraction(boundary) << ','
         << z.counts[std::size_t(boundary)] << '\n';
    }
  }
}

}  // namespace dynamips::io
