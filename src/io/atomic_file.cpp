#include "io/atomic_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace dynamips::io {

using core::Status;
using core::StatusCode;
using atomic_detail::fsync_path;
using atomic_detail::publish;

struct AtomicFileWriter::Impl {
  std::ofstream out;
};

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp"), impl_(new Impl) {
  impl_->out.open(tmp_path_, std::ios::binary | std::ios::trunc);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    impl_->out.close();
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
  }
  delete impl_;
}

bool AtomicFileWriter::ok() const { return impl_->out.is_open(); }

std::ostream& AtomicFileWriter::stream() { return impl_->out; }

Status AtomicFileWriter::commit() {
  if (committed_)
    return Status(StatusCode::kFailedPrecondition,
                  "already committed: " + path_);
  impl_->out.flush();
  bool good = bool(impl_->out);
  impl_->out.close();
  if (!good) {
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
    return Status(StatusCode::kInternal, "short write to " + tmp_path_);
  }
  if (Status st = fsync_path(tmp_path_); !st.ok()) {
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
    return st;
  }
  Status st = publish(tmp_path_, path_, /*keep_previous=*/false);
  if (st.ok()) committed_ = true;
  return st;
}

}  // namespace dynamips::io
