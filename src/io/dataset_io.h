// dataset_io.h — CSV codecs for the two dataset record types.
//
// Allows running the analysis pipeline on externally supplied data (e.g.
// real Atlas IP-echo exports converted to this schema) and persisting
// simulated datasets for inspection.
//
// Echo schema:   probe_id,hour,family,x_client_ip,src_addr
// Assoc schema:  day,v4_24,v6_64,asn4,asn6
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "atlas/echo.h"
#include "cdn/rum.h"

namespace dynamips::io {

/// Serialize one echo record to a CSV line (no trailing newline).
std::string to_csv(const atlas::EchoRecord& rec);

/// Parse one echo CSV line; nullopt on malformed input.
std::optional<atlas::EchoRecord> echo_from_csv(std::string_view line);

/// Write a whole probe series with header.
void write_echo_csv(std::ostream& os, const atlas::ProbeSeries& series);

/// Read an echo CSV stream (header optional) into a probe series; records
/// must all carry the same probe id. Returns nullopt on parse failure.
std::optional<atlas::ProbeSeries> read_echo_csv(std::istream& is);

/// Serialize one association record.
std::string to_csv(const cdn::AssociationRecord& rec);

/// Parse one association CSV line; nullopt on malformed input.
std::optional<cdn::AssociationRecord> assoc_from_csv(std::string_view line);

/// Write an association log with header.
void write_assoc_csv(std::ostream& os, const cdn::AssociationLog& log);

/// Read an association log (asn/mobile/registry fields of the result are
/// left for the caller to fill). Returns nullopt on parse failure.
std::optional<cdn::AssociationLog> read_assoc_csv(std::istream& is);

}  // namespace dynamips::io
