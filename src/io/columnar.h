// columnar.h — versioned, checksummed, memory-mappable columnar batches.
//
// The CSV readers (readers.h) parse text row by row; at paper scale (the
// CDN dataset is 32.7 B association tuples) the parse itself dominates
// ingest. A `.col` batch stores the same dataset as structure-of-arrays
// columns of fixed-width little-endian integers, so loading is a bounds
// check plus a column-wise transpose — branch-free loops over contiguous
// arrays the compiler can vectorize — instead of a hundred bytes of text
// handling per record. Measured on the CI runner the columnar path ingests
// well over an order of magnitude more tuples per second than CSV.
//
// File layout (all integers little-endian):
//
//   "DYNCOL1\n"                                   8-byte magic
//   u32 version                                   currently 1
//   u32 kind                                      1 = echo, 2 = assoc
//   u64 row_count
//   u64 group_count
//   u32 column_count
//   column directory: per column
//     u32 tag, u64 offset, u64 length, u32 crc32(payload)
//   u32 crc32(all bytes above)                    header trailer
//   ... column payloads, each 64-byte aligned ...
//
// Every semantic byte is covered by a CRC: the directory by the header
// trailer, each column payload by its directory entry. A flipped bit or a
// truncated tail therefore surfaces as a kDataLoss Status — never a crash,
// never a silently wrong dataset. Version skew is kFailedPrecondition,
// mirroring io/checkpoint.h.
//
// Mmap safety: column payloads are only ever read through std::memcpy into
// properly-typed locals (never cast-and-dereference), so mapping the file
// needs no alignment guarantees from the format — the 64-byte alignment is
// a cache/vectorization courtesy, not a correctness requirement. The bytes
// are validated (CRCs, directory bounds, group counts summing to the row
// count) before any decode; what is NOT safe is mutating the mapping or
// expecting the file to stay unchanged underneath a live mapping — the
// readers copy decoded records out and unmap before returning.
//
// Dataset semantics are identical to the CSV path: groups play the role of
// the `#probe`/`#tags`/`#log` preambles, per-row decode failures are
// classified through the same RejectReason table and `ingest.reject.*`
// counters, and the same error budget (ReaderOptions::max_reject_fraction,
// max_consecutive_rejects) applies — one shared classification table, no
// divergent counter names. A clean dataset therefore loads byte-identically
// through either path, which is what the columnar-vs-CSV byte-identity CI
// legs assert end to end.
//
// The echo columns are: group probe ids + row counts + tag blob, then per
// row hour, family, v4 addresses, v6 address halves. The assoc columns are:
// group ASNs + row counts, then per row day, v4 prefix (address + length),
// v6 prefix (halves + length), asn4, asn6. The assoc schema deliberately
// matches the CSV schema — no subscriber column — so columnar and CSV
// exports of the same dataset carry identical information.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "atlas/echo.h"
#include "cdn/rum.h"
#include "core/status.h"
#include "io/readers.h"

namespace dynamips::io {

inline constexpr std::uint32_t kColumnarVersion = 1;
inline constexpr std::string_view kColumnarMagic = "DYNCOL1\n";
inline constexpr std::uint32_t kColumnarKindEcho = 1;
inline constexpr std::uint32_t kColumnarKindAssoc = 2;

/// True when `path` names a columnar batch (`.col` extension). The study
/// entrypoints and the stream driver use this to dispatch between the CSV
/// readers and the columnar readers; both kinds can be mixed freely in one
/// input list or watch directory.
bool is_columnar_path(std::string_view path);

// ------------------------------------------------------------------ write

/// Serialize a dataset to the columnar layout (no I/O).
std::string encode_echo_columnar(
    const std::vector<atlas::ProbeSeries>& dataset);
std::string encode_assoc_columnar(
    const std::vector<cdn::AssociationLog>& dataset);

/// Atomically write a dataset as a `.col` batch (tmp + fsync + rename via
/// io/atomic_file.h, like every other artifact).
core::Status write_echo_columnar(
    const std::string& path, const std::vector<atlas::ProbeSeries>& dataset);
core::Status write_assoc_columnar(
    const std::string& path, const std::vector<cdn::AssociationLog>& dataset);

// ------------------------------------------------------------------- read

/// Decode a columnar batch from raw bytes (the fuzz surface: arbitrary
/// bytes must come back as a Status, never a crash). Structural damage —
/// bad magic, CRC mismatch, truncation, inconsistent counts — is kDataLoss;
/// an unknown version is kFailedPrecondition. Per-row implausibilities
/// (hour/day over the cap, family not 4/6, prefix length out of range,
/// duplicates) go through the shared reject classification and error
/// budget exactly like CSV line rejects. `source_label` is the quarantine
/// source column (typically the file path).
core::Expected<std::vector<atlas::ProbeSeries>> decode_echo_columnar(
    std::string_view bytes, const ReaderOptions& options = {},
    IngestStats* stats = nullptr);
core::Expected<std::vector<cdn::AssociationLog>> decode_assoc_columnar(
    std::string_view bytes, const ReaderOptions& options = {},
    IngestStats* stats = nullptr);

/// Read a `.col` batch from disk. On POSIX the file is memory-mapped
/// (falling back to a plain read when mmap fails); elsewhere it is read
/// into memory. Decoded records are copied out — the mapping does not
/// outlive the call.
core::Expected<std::vector<atlas::ProbeSeries>> read_echo_columnar(
    const std::string& path, const ReaderOptions& options = {},
    IngestStats* stats = nullptr);
core::Expected<std::vector<cdn::AssociationLog>> read_assoc_columnar(
    const std::string& path, const ReaderOptions& options = {},
    IngestStats* stats = nullptr);

// -------------------------------------------------------------- dispatch

/// Load one dataset file, choosing the columnar or CSV reader by
/// extension. This is the single entry the study pipeline and the stream
/// driver load every input through, so `.col` batches ride alongside
/// `.csv` everywhere files are accepted.
core::Expected<std::vector<atlas::ProbeSeries>> load_echo_file(
    const std::string& path, const ReaderOptions& options = {},
    IngestStats* stats = nullptr);
core::Expected<std::vector<cdn::AssociationLog>> load_assoc_file(
    const std::string& path, const ReaderOptions& options = {},
    IngestStats* stats = nullptr);

}  // namespace dynamips::io
