// checkpoint.h — versioned, checksummed study checkpoints.
//
// A checkpoint is a binary snapshot of a mid-run study: the shard table
// (index ranges plus per-shard progress), one opaque blob per shard holding
// its analyzer and metrics-sink state, a snapshot of the process-wide
// metrics registry (counters of studies that already completed this
// process), and the supervisor's own `checkpoint.*` accounting. Simulator
// state is deliberately absent: per-item output is a pure function of
// (config, index) — the RNG streams are derived, not stepped — so progress
// indices plus analyzer state reconstruct the run exactly. A config
// fingerprint guards against resuming under different parameters.
//
// File layout (all integers little-endian):
//
//   "DYNCKPT1"                                    8-byte magic
//   u32 version                                   currently 1
//   u32 section_count
//   section*: u32 tag, u64 length, payload bytes, u32 crc32(payload)
//   u32 crc32(everything above)                   whole-file trailer
//
// Sections: one META (kind, fingerprint, item count, shard count), one SHRD
// per shard (begin, end, next, blob), optional REGS (registry snapshot),
// SUPV (supervisor sink) and STRM (streaming-mode batch high-water mark:
// the consumed batch basenames in consumption order). Every section carries
// its own CRC32 and the file a whole-file CRC, so a single flipped bit or a
// truncated tail is detected and rejected with a descriptive Status — never
// a crash or a silently wrong resume.
//
// Durability: write_checkpoint() goes through tmp + rename and retains the
// previous checkpoint as `path.prev` until the new one is in place;
// read_checkpoint_with_fallback() falls back to `.prev` when the primary is
// missing or damaged.
//
// Retention: publishing renames the current checkpoint over any existing
// `path.prev`, so repeated writes keep exactly the last two generations —
// `path` and `path.prev` — no matter how long a streaming run checkpoints
// after every batch. Nothing else accumulates (`path.tmp` exists only
// mid-write).
//
// The byte codec (Writer/Reader) is header-only on purpose: analyzers in
// core/, stats/ and obs/ implement save()/load() against it without their
// libraries linking dynamips_io.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace dynamips::io {

namespace ckpt {

/// CRC32 (IEEE 802.3 polynomial, reflected), table-driven. Eight tables:
/// table[0] is the classic byte-at-a-time table (kept public — tests and
/// tools index it directly); the other seven extend it so crc32() can use
/// the slicing-by-8 formulation, which processes 8 input bytes per
/// iteration and runs ~5x faster over the multi-hundred-MB columnar
/// batches whose every payload byte is CRC-covered. Same polynomial, same
/// values as the bytewise loop — only the traversal order changes.
inline const std::array<std::array<std::uint32_t, 256>, 8>& crc32_tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

inline const std::array<std::uint32_t, 256>& crc32_table() {
  return crc32_tables()[0];
}

inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  const auto& t = crc32_tables();
  // Explicit little-endian word assembly: byte-order portable, and every
  // mainstream compiler folds it into a single 32-bit load on LE targets.
  auto le32 = [](const char* q) {
    return std::uint32_t(std::uint8_t(q[0])) |
           std::uint32_t(std::uint8_t(q[1])) << 8 |
           std::uint32_t(std::uint8_t(q[2])) << 16 |
           std::uint32_t(std::uint8_t(q[3])) << 24;
  };
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    const std::uint32_t lo = le32(p);
    const std::uint32_t hi = le32(p + 4);
    c ^= lo;
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][c >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n; --n, ++p)
    c = t[0][(c ^ std::uint8_t(*p)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

/// FNV-1a over a byte string — the config-fingerprint hash.
inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Append-only little-endian byte encoder. Doubles are stored bit-exact
/// through their IEEE-754 representation, which is what makes a resumed
/// run byte-identical to a straight one.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(char(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(char((v >> (8 * i)) & 0xFF));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(char((v >> (8 * i)) & 0xFF));
  }
  void i32(std::int32_t v) { u32(std::uint32_t(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder with a sticky failure flag: the first
/// out-of-bounds read fails the reader, every later read returns zero, and
/// callers check ok() once at the end instead of after every field.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : buf_(bytes) {}

  bool ok() const { return !fail_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return std::uint8_t(buf_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t(std::uint8_t(buf_[pos_++])) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= std::uint64_t(std::uint8_t(buf_[pos_++])) << (8 * i);
    return v;
  }
  std::int32_t i32() { return std::int32_t(u32()); }
  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    std::uint64_t n = u64();
    if (!need(n)) return {};
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Read an element count and reject counts that could not possibly fit
  /// in the remaining bytes (every element encodes at least one byte), so
  /// a corrupted length can never drive a multi-gigabyte allocation loop.
  std::uint64_t size() {
    std::uint64_t n = u64();
    if (n > remaining()) {
      fail_ = true;
      return 0;
    }
    return n;
  }

 private:
  bool need(std::uint64_t n) {
    if (fail_ || n > remaining()) {
      fail_ = true;
      return false;
    }
    return true;
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

}  // namespace ckpt

/// Bump when the container layout or any save()/load() encoding changes;
/// readers reject every other version with a descriptive Status.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Which study (and which data path) wrote the checkpoint. Resume validates
/// the kind before touching any blob.
inline constexpr std::uint32_t kCkptAtlasGen = 1;
inline constexpr std::uint32_t kCkptCdnGen = 2;
inline constexpr std::uint32_t kCkptAtlasFile = 3;
inline constexpr std::uint32_t kCkptCdnFile = 4;
inline constexpr std::uint32_t kCkptAtlasStream = 5;
inline constexpr std::uint32_t kCkptCdnStream = 6;

inline bool is_atlas_checkpoint_kind(std::uint32_t kind) {
  return kind == kCkptAtlasGen || kind == kCkptAtlasFile ||
         kind == kCkptAtlasStream;
}
inline bool is_cdn_checkpoint_kind(std::uint32_t kind) {
  return kind == kCkptCdnGen || kind == kCkptCdnFile ||
         kind == kCkptCdnStream;
}
inline bool is_stream_checkpoint_kind(std::uint32_t kind) {
  return kind == kCkptAtlasStream || kind == kCkptCdnStream;
}

/// Printable kind label for error messages.
const char* checkpoint_kind_name(std::uint32_t kind);

/// One shard's entry: its index range, the next unprocessed index, and the
/// serialized analyzer + metrics-sink state covering [begin, next).
struct CheckpointShard {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t next = 0;
  std::string blob;
};

/// A full mid-run snapshot of one study.
struct StudyCheckpoint {
  std::uint32_t kind = 0;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t item_count = 0;
  std::vector<CheckpointShard> shards;
  /// obs::MetricsSink snapshot of the process-wide registry at save time
  /// (counters of studies that already completed); empty when metrics off.
  std::string registry_blob;
  /// The supervisor's own sink (`checkpoint.*` counters/timers).
  std::string supervisor_blob;
  /// Streaming mode only: the batch high-water mark — basenames of every
  /// ingested batch file, in consumption order. A resumed stream skips
  /// these and replays only batches not yet consumed. Empty (and absent
  /// from the file) for the one-shot study kinds.
  std::vector<std::string> consumed;

  std::uint64_t items_done() const {
    std::uint64_t done = 0;
    for (const auto& s : shards) done += s.next - s.begin;
    return done;
  }
};

/// Serialize to the container layout (no I/O).
std::string encode_checkpoint(const StudyCheckpoint& ckpt);

/// Parse and fully validate a container: magic, version, per-section CRCs,
/// whole-file CRC, shard-table consistency. Corruption comes back as
/// kDataLoss, version skew as kFailedPrecondition.
core::Expected<StudyCheckpoint> decode_checkpoint(std::string_view bytes);

/// Atomically write `ckpt` to `path` (tmp + rename). With `keep_previous`
/// (the default) an existing checkpoint is retained as `path.prev` until
/// the new one is durable — keep-last-2 retention. Passing false drops
/// retention to keep-last-1 (the resource governor does this under disk
/// pressure): the write itself is still atomic, and any existing `.prev`
/// is removed once the new generation is in place.
core::Status write_checkpoint(const std::string& path,
                              const StudyCheckpoint& ckpt,
                              bool keep_previous = true);

/// Read and validate the checkpoint at `path`.
core::Expected<StudyCheckpoint> read_checkpoint(const std::string& path);

/// Read `path`; when it is missing or damaged, fall back to `path.prev`.
/// On success `used_path` (if non-null) reports which file was loaded; on
/// failure the Status describes both attempts.
core::Expected<StudyCheckpoint> read_checkpoint_with_fallback(
    const std::string& path, std::string* used_path = nullptr);

/// Remove `path`, `path.prev`, and `path.tmp` (end-of-run cleanup).
void remove_checkpoint_files(const std::string& path);

/// Combine the completed per-process checkpoints of a sharded run
/// (`dynamips_study --shard i/N` writes one each) into a single resumable
/// checkpoint — the multi-process merge step. Validates that every input
/// has the same kind, config fingerprint and item count, that every shard
/// is complete (next == end), that no input carries stream state, and
/// that the union of shard ranges tiles [0, item_count) with no gap or
/// overlap. Shards are ordered by begin index in the result, so a resume
/// from it reduces in index order — byte-identical to a single-process
/// run. Registry and supervisor blobs are per-process diagnostics and are
/// dropped (they never influence results).
core::Expected<StudyCheckpoint> combine_shard_checkpoints(
    const std::vector<std::string>& paths);

}  // namespace dynamips::io
