// csv.h — minimal CSV tokenization shared by the dataset codecs.
//
// The interchange formats are deliberately plain: comma-separated fields,
// no quoting (no field in any of our schemas can contain a comma), one
// header line. This keeps files greppable and loadable by any tooling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dynamips::io {

/// Split one CSV line into fields (no quoting rules; empty fields kept).
inline std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Join fields with commas.
inline std::string join_csv(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out.push_back(',');
    out += fields[i];
  }
  return out;
}

}  // namespace dynamips::io
