// csv.h — minimal CSV tokenization shared by the dataset codecs.
//
// The interchange formats are deliberately plain: comma-separated fields,
// no quoting (no field in any of our schemas can contain a comma), one
// header line. This keeps files greppable and loadable by any tooling.
// Tokenization is hardened for hostile input: splitting is capped so a
// pathological line cannot allocate an unbounded field vector, and helpers
// strip the CRLF / UTF-8 BOM artifacts Windows exports leave behind.
#pragma once

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dynamips::io {

/// Hard cap on fields per line. Our widest schema has 5 fields; 64 leaves
/// generous headroom while bounding the allocation for a line that is
/// nothing but commas.
inline constexpr std::size_t kMaxCsvFields = 64;

/// Split one CSV line into fields (no quoting rules; empty fields kept).
/// At most `max_fields` fields are produced: once the cap is reached the
/// remainder of the line — commas included — becomes the final field, so
/// schema-width checks (`fields.size() == 5`) reject oversplit lines
/// without the splitter ever allocating proportionally to the comma count.
inline std::vector<std::string_view> split_csv(
    std::string_view line, std::size_t max_fields = kMaxCsvFields) {
  std::vector<std::string_view> out;
  if (max_fields == 0) max_fields = 1;
  std::size_t start = 0;
  while (true) {
    if (out.size() + 1 == max_fields) {
      out.push_back(line.substr(start));
      break;
    }
    std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Drop one trailing '\r' (CRLF line endings read via std::getline).
inline std::string_view chomp_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

/// Drop a leading UTF-8 byte-order mark (EF BB BF), which spreadsheet
/// tools prepend to the header line of exported CSVs.
inline std::string_view strip_utf8_bom(std::string_view line) {
  if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF')
    line.remove_prefix(3);
  return line;
}

/// Parse a whole field as an unsigned integer: every byte must be consumed
/// (no sign, no whitespace, no trailing junk). Shared by the dataset codecs
/// and the hardened readers.
template <typename T>
std::optional<T> parse_csv_num(std::string_view s) {
  T v{};
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Join fields with commas.
inline std::string join_csv(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out.push_back(',');
    out += fields[i];
  }
  return out;
}

}  // namespace dynamips::io
