#include "io/dataset_io.h"

#include <charconv>
#include <istream>
#include <ostream>

#include "io/csv.h"

namespace dynamips::io {

namespace {

template <typename T>
std::optional<T> parse_num(std::string_view s) {
  return parse_csv_num<T>(s);
}

}  // namespace

std::string to_csv(const atlas::EchoRecord& rec) {
  std::string out;
  out += std::to_string(rec.probe_id);
  out += ',';
  out += std::to_string(rec.hour);
  out += ',';
  if (rec.family == atlas::Family::kV4) {
    out += "4,";
    out += rec.x_client_ip4.to_string();
    out += ',';
    out += rec.src_addr4.to_string();
  } else {
    out += "6,";
    out += rec.x_client_ip6.to_string();
    out += ',';
    out += rec.src_addr6.to_string();
  }
  return out;
}

std::optional<atlas::EchoRecord> echo_from_csv(std::string_view line) {
  auto f = split_csv(line);
  if (f.size() != 5) return std::nullopt;
  auto probe = parse_num<std::uint32_t>(f[0]);
  auto hour = parse_num<std::uint64_t>(f[1]);
  if (!probe || !hour) return std::nullopt;
  atlas::EchoRecord rec;
  rec.probe_id = *probe;
  rec.hour = *hour;
  if (f[2] == "4") {
    rec.family = atlas::Family::kV4;
    auto x = net::IPv4Address::parse(f[3]);
    auto s = net::IPv4Address::parse(f[4]);
    if (!x || !s) return std::nullopt;
    rec.x_client_ip4 = *x;
    rec.src_addr4 = *s;
  } else if (f[2] == "6") {
    rec.family = atlas::Family::kV6;
    auto x = net::IPv6Address::parse(f[3]);
    auto s = net::IPv6Address::parse(f[4]);
    if (!x || !s) return std::nullopt;
    rec.x_client_ip6 = *x;
    rec.src_addr6 = *s;
  } else {
    return std::nullopt;
  }
  return rec;
}

void write_echo_csv(std::ostream& os, const atlas::ProbeSeries& series) {
  os << "probe_id,hour,family,x_client_ip,src_addr\n";
  for (const auto& rec : series.records) os << to_csv(rec) << '\n';
}

std::optional<atlas::ProbeSeries> read_echo_csv(std::istream& is) {
  atlas::ProbeSeries series;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first && line.rfind("probe_id,", 0) == 0) {
      first = false;
      continue;
    }
    first = false;
    auto rec = echo_from_csv(line);
    if (!rec) return std::nullopt;
    series.records.push_back(*rec);
  }
  if (!series.records.empty())
    series.meta.probe_id = series.records.front().probe_id;
  for (const auto& r : series.records)
    if (r.probe_id != series.meta.probe_id) return std::nullopt;
  return series;
}

std::string to_csv(const cdn::AssociationRecord& rec) {
  std::string out;
  out += std::to_string(rec.day);
  out += ',';
  out += rec.v4_24.to_string();
  out += ',';
  out += rec.v6_64.to_string();
  out += ',';
  out += std::to_string(rec.asn4);
  out += ',';
  out += std::to_string(rec.asn6);
  return out;
}

std::optional<cdn::AssociationRecord> assoc_from_csv(std::string_view line) {
  auto f = split_csv(line);
  if (f.size() != 5) return std::nullopt;
  auto day = parse_num<std::uint32_t>(f[0]);
  auto v4 = net::Prefix4::parse(f[1]);
  auto v6 = net::Prefix6::parse(f[2]);
  auto asn4 = parse_num<std::uint32_t>(f[3]);
  auto asn6 = parse_num<std::uint32_t>(f[4]);
  if (!day || !v4 || !v6 || !asn4 || !asn6) return std::nullopt;
  cdn::AssociationRecord rec;
  rec.day = *day;
  rec.v4_24 = *v4;
  rec.v6_64 = *v6;
  rec.asn4 = *asn4;
  rec.asn6 = *asn6;
  return rec;
}

void write_assoc_csv(std::ostream& os, const cdn::AssociationLog& log) {
  os << "day,v4_24,v6_64,asn4,asn6\n";
  for (const auto& rec : log.records) os << to_csv(rec) << '\n';
}

std::optional<cdn::AssociationLog> read_assoc_csv(std::istream& is) {
  cdn::AssociationLog log;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first && line.rfind("day,", 0) == 0) {
      first = false;
      continue;
    }
    first = false;
    auto rec = assoc_from_csv(line);
    if (!rec) return std::nullopt;
    log.records.push_back(*rec);
  }
  return log;
}

}  // namespace dynamips::io
