#include "io/checkpoint.h"

#include <algorithm>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "core/failpoint.h"
#include "io/atomic_file.h"

namespace dynamips::io {

namespace {

using core::Expected;
using core::Status;
using core::StatusCode;

constexpr char kMagic[8] = {'D', 'Y', 'N', 'C', 'K', 'P', 'T', '1'};

// Section tags (fourcc, little-endian in the file).
constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return std::uint32_t(std::uint8_t(a)) | std::uint32_t(std::uint8_t(b)) << 8 |
         std::uint32_t(std::uint8_t(c)) << 16 |
         std::uint32_t(std::uint8_t(d)) << 24;
}
constexpr std::uint32_t kSecMeta = fourcc('M', 'E', 'T', 'A');
constexpr std::uint32_t kSecShard = fourcc('S', 'H', 'R', 'D');
constexpr std::uint32_t kSecRegistry = fourcc('R', 'E', 'G', 'S');
constexpr std::uint32_t kSecSupervisor = fourcc('S', 'U', 'P', 'V');
constexpr std::uint32_t kSecStream = fourcc('S', 'T', 'R', 'M');

std::string section_name(std::uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    char c = char((tag >> (8 * i)) & 0xFF);
    name[std::size_t(i)] = (c >= 32 && c < 127) ? c : '?';
  }
  return name;
}

void append_section(ckpt::Writer& out, std::uint32_t tag,
                    std::string_view payload) {
  out.u32(tag);
  out.str(payload);  // u64 length + bytes
  out.u32(ckpt::crc32(payload));
}

Status data_loss(const std::string& what) {
  return Status(StatusCode::kDataLoss, "checkpoint is corrupt: " + what);
}

}  // namespace

const char* checkpoint_kind_name(std::uint32_t kind) {
  switch (kind) {
    case kCkptAtlasGen: return "atlas-study";
    case kCkptCdnGen: return "cdn-study";
    case kCkptAtlasFile: return "atlas-study-from-files";
    case kCkptCdnFile: return "cdn-study-from-files";
    case kCkptAtlasStream: return "atlas-stream";
    case kCkptCdnStream: return "cdn-stream";
  }
  return "unknown";
}

std::string encode_checkpoint(const StudyCheckpoint& ckpt) {
  ckpt::Writer out;
  for (char c : kMagic) out.u8(std::uint8_t(c));
  out.u32(kCheckpointVersion);
  std::uint32_t sections = 1 + std::uint32_t(ckpt.shards.size()) +
                           (ckpt.registry_blob.empty() ? 0u : 1u) +
                           (ckpt.supervisor_blob.empty() ? 0u : 1u) +
                           (ckpt.consumed.empty() ? 0u : 1u);
  out.u32(sections);

  {
    ckpt::Writer meta;
    meta.u32(ckpt.kind);
    meta.u64(ckpt.config_fingerprint);
    meta.u64(ckpt.item_count);
    meta.u64(ckpt.shards.size());
    append_section(out, kSecMeta, meta.buffer());
  }
  for (const CheckpointShard& shard : ckpt.shards) {
    ckpt::Writer body;
    body.u64(shard.begin);
    body.u64(shard.end);
    body.u64(shard.next);
    body.str(shard.blob);
    append_section(out, kSecShard, body.buffer());
  }
  if (!ckpt.registry_blob.empty())
    append_section(out, kSecRegistry, ckpt.registry_blob);
  if (!ckpt.supervisor_blob.empty())
    append_section(out, kSecSupervisor, ckpt.supervisor_blob);
  if (!ckpt.consumed.empty()) {
    ckpt::Writer body;
    body.u64(ckpt.consumed.size());
    for (const std::string& name : ckpt.consumed) body.str(name);
    append_section(out, kSecStream, body.buffer());
  }

  out.u32(ckpt::crc32(out.buffer()));
  return out.take();
}

Expected<StudyCheckpoint> decode_checkpoint(std::string_view bytes) {
  if (bytes.size() < sizeof kMagic + 4 + 4 + 4)
    return data_loss("file shorter than the fixed header");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    return data_loss("bad magic (not a DynamIPs checkpoint)");

  // Whole-file CRC first: any damage anywhere fails here already; section
  // CRCs below then localize it for the error message.
  std::string_view body = bytes.substr(0, bytes.size() - 4);
  ckpt::Reader trailer(bytes.substr(bytes.size() - 4));
  if (trailer.u32() != ckpt::crc32(body))
    return data_loss("whole-file CRC mismatch");

  ckpt::Reader in(body.substr(sizeof kMagic));
  std::uint32_t version = in.u32();
  if (version != kCheckpointVersion)
    return Status(StatusCode::kFailedPrecondition,
                  "unsupported checkpoint version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(kCheckpointVersion) + ")");
  std::uint32_t section_count = in.u32();

  StudyCheckpoint ckpt;
  bool have_meta = false;
  std::uint64_t declared_shards = 0;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    std::uint32_t tag = in.u32();
    std::string payload = in.str();
    std::uint32_t crc = in.u32();
    if (!in.ok()) return data_loss("truncated section table");
    if (crc != ckpt::crc32(payload))
      return data_loss("section " + section_name(tag) + " CRC mismatch");

    ckpt::Reader sec(payload);
    if (tag == kSecMeta) {
      ckpt.kind = sec.u32();
      ckpt.config_fingerprint = sec.u64();
      ckpt.item_count = sec.u64();
      declared_shards = sec.u64();
      if (!sec.ok() || sec.remaining() != 0)
        return data_loss("malformed META section");
      have_meta = true;
    } else if (tag == kSecShard) {
      CheckpointShard shard;
      shard.begin = sec.u64();
      shard.end = sec.u64();
      shard.next = sec.u64();
      shard.blob = sec.str();
      if (!sec.ok() || sec.remaining() != 0)
        return data_loss("malformed SHRD section");
      ckpt.shards.push_back(std::move(shard));
    } else if (tag == kSecRegistry) {
      ckpt.registry_blob = std::move(payload);
    } else if (tag == kSecSupervisor) {
      ckpt.supervisor_blob = std::move(payload);
    } else if (tag == kSecStream) {
      std::uint64_t n = sec.size();
      ckpt.consumed.reserve(n);
      for (std::uint64_t k = 0; k < n; ++k) ckpt.consumed.push_back(sec.str());
      if (!sec.ok() || sec.remaining() != 0)
        return data_loss("malformed STRM section");
    } else {
      return data_loss("unknown section " + section_name(tag));
    }
  }
  if (!in.ok() || in.remaining() != 0)
    return data_loss("trailing or missing bytes after the section table");
  if (!have_meta) return data_loss("missing META section");
  if (ckpt.shards.size() != declared_shards)
    return data_loss("shard count mismatch (META says " +
                     std::to_string(declared_shards) + ", found " +
                     std::to_string(ckpt.shards.size()) + ")");

  // Shard-table invariants: contiguous ranges inside [0, item_count],
  // progress inside each range. The table need not start at 0 or cover
  // every item: a `--shard i/N` process checkpoints only its slice.
  // Where the expected coverage is known, the caller enforces it —
  // plan_shards() validates that a resumed table tiles the process's
  // slice, and combine_shard_checkpoints() that the union of slices
  // tiles [0, item_count).
  std::uint64_t expect_begin = ckpt.shards.empty() ? 0 : ckpt.shards[0].begin;
  for (std::size_t s = 0; s < ckpt.shards.size(); ++s) {
    const CheckpointShard& shard = ckpt.shards[s];
    if (shard.begin != expect_begin || shard.end < shard.begin ||
        shard.next < shard.begin || shard.next > shard.end ||
        shard.end > ckpt.item_count)
      return data_loss("inconsistent shard table at shard " +
                       std::to_string(s));
    expect_begin = shard.end;
  }
  return ckpt;
}

Status write_checkpoint(const std::string& path, const StudyCheckpoint& ckpt,
                        bool keep_previous) {
  if (path.empty())
    return Status(StatusCode::kInvalidArgument, "empty checkpoint path");
  std::string encoded = encode_checkpoint(ckpt);
  if (auto fp = core::failpoint("checkpoint.write"); fp) {
    if (fp.is_error())
      return Status(StatusCode::kInternal,
                    std::string("checkpoint write failed (injected ") +
                        fp.errno_name() + "): " + path);
    core::failpoint_sleep(fp);
  }
  if (auto fp = core::failpoint("checkpoint.torn"); fp.is_short_write()) {
    // Clobber the primary *non*-atomically with a truncated image — the
    // on-disk state a mid-section crash would leave if the atomic writer
    // did not exist. read_checkpoint_with_fallback must recover from
    // `.prev`.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(encoded.data(), std::streamsize(encoded.size() / 2));
    return Status(StatusCode::kDataLoss,
                  "torn checkpoint section write (injected): " + path);
  }
  Status wrote = write_file_atomic(path, encoded, keep_previous)
                     .with_context("write checkpoint " + path);
  if (wrote.ok() && !keep_previous) {
    // keep-last-1 retention (disk pressure): once the new generation is
    // durable, release any `.prev` sibling left by earlier keep-last-2
    // writes. Best-effort — a lingering `.prev` only costs bytes.
    std::error_code ec;
    std::filesystem::remove(path + ".prev", ec);
  }
  return wrote;
}

Expected<StudyCheckpoint> read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    return Status(StatusCode::kNotFound, "cannot open checkpoint: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad())
    return Status(StatusCode::kInternal, "cannot read checkpoint: " + path);
  auto decoded = decode_checkpoint(buf.view());
  if (!decoded.ok()) {
    Status st = decoded.status();
    return st.with_context(path);
  }
  return decoded;
}

Expected<StudyCheckpoint> read_checkpoint_with_fallback(
    const std::string& path, std::string* used_path) {
  auto primary = read_checkpoint(path);
  if (primary.ok()) {
    if (used_path) *used_path = path;
    return primary;
  }
  const std::string prev_path = path + ".prev";
  auto prev = read_checkpoint(prev_path);
  if (prev.ok()) {
    if (used_path) *used_path = prev_path;
    return prev;
  }
  Status st = primary.status();
  return st.with_context("no usable checkpoint (" + prev_path +
                         " also failed: " + prev.status().message() + ")");
}

void remove_checkpoint_files(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".prev", ec);
  std::filesystem::remove(path + ".tmp", ec);
}

Expected<StudyCheckpoint> combine_shard_checkpoints(
    const std::vector<std::string>& paths) {
  if (paths.empty())
    return Status(StatusCode::kInvalidArgument,
                  "no shard checkpoints to combine");
  StudyCheckpoint combined;
  bool first = true;
  for (const auto& path : paths) {
    auto loaded = read_checkpoint_with_fallback(path);
    if (!loaded.ok()) {
      Status st = loaded.status();
      return st.with_context("combine shard checkpoints");
    }
    StudyCheckpoint ck = loaded.take();
    if (is_stream_checkpoint_kind(ck.kind) || !ck.consumed.empty())
      return Status(StatusCode::kFailedPrecondition,
                    path + " is a streaming checkpoint; sharded merge "
                           "applies to one-shot study runs");
    if (first) {
      combined.kind = ck.kind;
      combined.config_fingerprint = ck.config_fingerprint;
      combined.item_count = ck.item_count;
      first = false;
    } else {
      if (ck.kind != combined.kind)
        return Status(StatusCode::kFailedPrecondition,
                      path + " was written by the " +
                          checkpoint_kind_name(ck.kind) +
                          " study but earlier shards are " +
                          checkpoint_kind_name(combined.kind));
      if (ck.config_fingerprint != combined.config_fingerprint)
        return Status(StatusCode::kFailedPrecondition,
                      path + " has a different config fingerprint; every "
                             "shard must run the exact same study "
                             "parameters");
      if (ck.item_count != combined.item_count)
        return Status(StatusCode::kFailedPrecondition,
                      path + " covers " + std::to_string(ck.item_count) +
                          " items but earlier shards cover " +
                          std::to_string(combined.item_count));
    }
    for (auto& shard : ck.shards) {
      if (shard.next != shard.end)
        return Status(StatusCode::kFailedPrecondition,
                      path + " is incomplete: shard [" +
                          std::to_string(shard.begin) + ", " +
                          std::to_string(shard.end) + ") stopped at " +
                          std::to_string(shard.next) +
                          "; finish or re-run that shard before merging");
      combined.shards.push_back(std::move(shard));
    }
  }
  // Index order: the resumed reduction must merge shards in ascending item
  // order for byte-identity with a single-process run.
  std::stable_sort(combined.shards.begin(), combined.shards.end(),
                   [](const CheckpointShard& a, const CheckpointShard& b) {
                     return a.begin < b.begin;
                   });
  std::uint64_t cursor = 0;
  for (const auto& shard : combined.shards) {
    if (shard.begin == shard.end) continue;
    if (shard.begin != cursor)
      return Status(StatusCode::kFailedPrecondition,
                    "shard ranges do not tile the item range: gap or "
                    "overlap at item " +
                        std::to_string(shard.begin) + " (expected " +
                        std::to_string(cursor) +
                        "); a shard file is missing, duplicated, or from "
                        "a different --shard split");
    cursor = shard.end;
  }
  if (cursor != combined.item_count)
    return Status(StatusCode::kFailedPrecondition,
                  "shard ranges cover items up to " + std::to_string(cursor) +
                      " of " + std::to_string(combined.item_count) +
                      "; a shard file is missing");
  return combined;
}

}  // namespace dynamips::io
