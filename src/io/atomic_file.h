// atomic_file.h — crash-safe, durable file writes via tmp + rename.
//
// Every artifact the pipeline emits (results CSVs, metrics JSON, quarantine
// files, checkpoints) is written through this helper: the bytes go to a
// sibling temporary file first and only an atomic rename(2) publishes them
// under the final name. A run that crashes, is killed, or fails an error
// budget mid-write therefore never truncates or clobbers the previous good
// output — the destination either still holds the old bytes or already
// holds the complete new ones, never a prefix. The publish itself is made
// durable by fsyncing the destination's parent directory after the rename:
// without that, a power loss can forget the rename even though the file's
// own bytes were synced.
//
// Failure realism: the write/fsync/rename/dirsync steps each carry a named
// failpoint (core/failpoint.h — `atomic_file.write`, `atomic_file.fsync`,
// `atomic_file.rename`, `atomic_file.dirsync`) so chaos runs can inject
// ENOSPC, EIO, and torn writes into the exact syscall boundaries this
// header exists to survive. Disarmed, each hook is a single relaxed load.
#pragma once

#include <filesystem>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>
#include <system_error>

#ifdef __unix__
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/failpoint.h"
#include "core/status.h"

namespace dynamips::io {

namespace atomic_detail {

#ifdef __unix__
/// close(2) with the POSIX EINTR caveat handled: on Linux the descriptor
/// is gone even when close reports EINTR, so retrying would race a reused
/// fd — EINTR counts as success; any other error is reported.
inline bool close_checked(int fd, int* err) {
  if (::close(fd) == 0 || errno == EINTR) return true;
  *err = errno;
  return false;
}
#endif

/// Flush a file's bytes to stable storage. ofstream exposes no descriptor,
/// so the file is reopened by name; non-POSIX platforms get plain flush
/// semantics (the rename is still atomic there). EINTR on open/fsync is
/// retried and the close result is checked — an error surfacing at close
/// is still a write that never reached the disk.
inline core::Status fsync_path(const std::string& path) {
#ifdef __unix__
  if (auto fp = core::failpoint("atomic_file.fsync"); fp.is_error())
    return core::Status(core::StatusCode::kInternal,
                        std::string("fsync failed (injected ") +
                            fp.errno_name() + "): " + path);
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0)
    return core::Status(core::StatusCode::kInternal,
                        "cannot reopen for fsync: " + path + ": " +
                            std::strerror(errno));
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int sync_err = errno;
    int ignored;
    close_checked(fd, &ignored);  // report the fsync error, not the close
    return core::Status(core::StatusCode::kInternal,
                        "fsync failed: " + path + ": " +
                            std::strerror(sync_err));
  }
  int close_err = 0;
  if (!close_checked(fd, &close_err))
    return core::Status(core::StatusCode::kInternal,
                        "close after fsync failed: " + path + ": " +
                            std::strerror(close_err));
#else
  (void)path;
#endif
  return core::Status::Ok();
}

/// Flush the directory entry for `path` to stable storage: after a rename
/// the new name lives in the parent directory's data, and only a directory
/// fsync makes the publish itself survive power loss. Filesystems that
/// cannot fsync a directory handle (EINVAL/ENOTSUP) degrade to the old
/// contents-only durability instead of failing the write.
inline core::Status fsync_parent_dir(const std::string& path) {
#ifdef __unix__
  if (auto fp = core::failpoint("atomic_file.dirsync"); fp.is_error())
    return core::Status(core::StatusCode::kInternal,
                        std::string("directory fsync failed (injected ") +
                            fp.errno_name() + "): " + path);
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0)
    return core::Status(core::StatusCode::kInternal,
                        "cannot open directory for fsync: " + dir + ": " +
                            std::strerror(errno));
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINVAL && errno != ENOTSUP) {
    int sync_err = errno;
    int ignored;
    close_checked(fd, &ignored);
    return core::Status(core::StatusCode::kInternal,
                        "directory fsync failed: " + dir + ": " +
                            std::strerror(sync_err));
  }
  int close_err = 0;
  if (!close_checked(fd, &close_err))
    return core::Status(core::StatusCode::kInternal,
                        "close after directory fsync failed: " + dir + ": " +
                            std::strerror(close_err));
#else
  (void)path;
#endif
  return core::Status::Ok();
}

/// Publish `tmp` under `path` and fsync the parent directory; optionally
/// retain an existing destination as `path.prev` first.
inline core::Status publish(const std::string& tmp, const std::string& path,
                            bool keep_previous) {
  std::error_code ec;
  if (auto fp = core::failpoint("atomic_file.rename"); fp.is_error())
    return core::Status(core::StatusCode::kInternal,
                        std::string("cannot rename ") + tmp + " to " + path +
                            " (injected " + fp.errno_name() + ")");
  if (keep_previous && std::filesystem::exists(path, ec)) {
    std::filesystem::rename(path, path + ".prev", ec);
    if (ec)
      return core::Status(
          core::StatusCode::kInternal,
          "cannot retain previous " + path + ": " + ec.message());
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    return core::Status(
        core::StatusCode::kInternal,
        "cannot rename " + tmp + " to " + path + ": " + ec.message());
  return fsync_parent_dir(path);
}

}  // namespace atomic_detail

/// Write `contents` to `path` atomically: write + flush + fsync a sibling
/// `path.tmp`, then rename it over `path`. With `keep_previous`, an
/// existing destination is first renamed to `path.prev` instead of being
/// replaced, so the last durable version survives until the new one is in
/// place (the retention scheme checkpoints use; see io/checkpoint.h).
/// Header-only on purpose: layers below dynamips_io (obs' metrics-JSON
/// writer) publish their artifacts through it without a link dependency.
inline core::Status write_file_atomic(const std::string& path,
                                      std::string_view contents,
                                      bool keep_previous = false) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
      return core::Status(core::StatusCode::kInternal,
                          "cannot open for write: " + tmp);
    if (auto fp = core::failpoint("atomic_file.write"); fp) {
      if (fp.is_error()) {
        out.close();
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return core::Status(core::StatusCode::kInternal,
                            std::string("write failed (injected ") +
                                fp.errno_name() + "): " + tmp);
      }
      if (fp.is_short_write()) {
        // Simulate a crash mid-write: half the bytes land and the torn
        // .tmp stays behind, exactly what a reboot leaves on disk.
        out.write(contents.data(), std::streamsize(contents.size() / 2));
        out.flush();
        return core::Status(core::StatusCode::kInternal,
                            "short write to " + tmp + " (injected)");
      }
      core::failpoint_sleep(fp);
    }
    out.write(contents.data(), std::streamsize(contents.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return core::Status(core::StatusCode::kInternal,
                          "short write to " + tmp);
    }
  }
  if (core::Status st = atomic_detail::fsync_path(tmp); !st.ok()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return st;
  }
  return atomic_detail::publish(tmp, path, keep_previous);
}

/// Stream-style atomic writer for code that produces output incrementally
/// (CSV writers, the quarantine sink). Bytes stream into `path.tmp`;
/// commit() flushes, fsyncs, and renames it into place. Destroying the
/// writer without committing removes the temporary and leaves any previous
/// `path` untouched — the abort path needs no code at the call site.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  ~AtomicFileWriter();

  /// Whether the temporary file opened; check before streaming.
  bool ok() const;

  /// The stream to write through. Invalid after commit().
  std::ostream& stream();

  /// Flush, fsync, and atomically publish the bytes under the final path.
  core::Status commit();

  const std::string& path() const { return path_; }

 private:
  struct Impl;
  std::string path_;
  std::string tmp_path_;
  Impl* impl_;
  bool committed_ = false;
};

}  // namespace dynamips::io
