// atomic_file.h — crash-safe file writes via tmp + rename.
//
// Every artifact the pipeline emits (results CSVs, metrics JSON, quarantine
// files, checkpoints) is written through this helper: the bytes go to a
// sibling temporary file first and only an atomic rename(2) publishes them
// under the final name. A run that crashes, is killed, or fails an error
// budget mid-write therefore never truncates or clobbers the previous good
// output — the destination either still holds the old bytes or already
// holds the complete new ones, never a prefix.
#pragma once

#include <filesystem>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>
#include <system_error>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/status.h"

namespace dynamips::io {

namespace atomic_detail {

/// Flush a file's bytes to stable storage. ofstream exposes no descriptor,
/// so the file is reopened by name; non-POSIX platforms get plain flush
/// semantics (the rename is still atomic there).
inline core::Status fsync_path(const std::string& path) {
#ifdef __unix__
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0)
    return core::Status(core::StatusCode::kInternal,
                        "cannot reopen for fsync: " + path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    return core::Status(core::StatusCode::kInternal, "fsync failed: " + path);
#else
  (void)path;
#endif
  return core::Status::Ok();
}

/// Publish `tmp` under `path`; optionally retain an existing destination
/// as `path.prev` first.
inline core::Status publish(const std::string& tmp, const std::string& path,
                            bool keep_previous) {
  std::error_code ec;
  if (keep_previous && std::filesystem::exists(path, ec)) {
    std::filesystem::rename(path, path + ".prev", ec);
    if (ec)
      return core::Status(
          core::StatusCode::kInternal,
          "cannot retain previous " + path + ": " + ec.message());
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    return core::Status(
        core::StatusCode::kInternal,
        "cannot rename " + tmp + " to " + path + ": " + ec.message());
  return core::Status::Ok();
}

}  // namespace atomic_detail

/// Write `contents` to `path` atomically: write + flush + fsync a sibling
/// `path.tmp`, then rename it over `path`. With `keep_previous`, an
/// existing destination is first renamed to `path.prev` instead of being
/// replaced, so the last durable version survives until the new one is in
/// place (the retention scheme checkpoints use; see io/checkpoint.h).
/// Header-only on purpose: layers below dynamips_io (obs' metrics-JSON
/// writer) publish their artifacts through it without a link dependency.
inline core::Status write_file_atomic(const std::string& path,
                                      std::string_view contents,
                                      bool keep_previous = false) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
      return core::Status(core::StatusCode::kInternal,
                          "cannot open for write: " + tmp);
    out.write(contents.data(), std::streamsize(contents.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return core::Status(core::StatusCode::kInternal,
                          "short write to " + tmp);
    }
  }
  if (core::Status st = atomic_detail::fsync_path(tmp); !st.ok()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return st;
  }
  return atomic_detail::publish(tmp, path, keep_previous);
}

/// Stream-style atomic writer for code that produces output incrementally
/// (CSV writers, the quarantine sink). Bytes stream into `path.tmp`;
/// commit() flushes, fsyncs, and renames it into place. Destroying the
/// writer without committing removes the temporary and leaves any previous
/// `path` untouched — the abort path needs no code at the call site.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  ~AtomicFileWriter();

  /// Whether the temporary file opened; check before streaming.
  bool ok() const;

  /// The stream to write through. Invalid after commit().
  std::ostream& stream();

  /// Flush, fsync, and atomically publish the bytes under the final path.
  core::Status commit();

  const std::string& path() const { return path_; }

 private:
  struct Impl;
  std::string path_;
  std::string tmp_path_;
  Impl* impl_;
  bool committed_ = false;
};

}  // namespace dynamips::io
