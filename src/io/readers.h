// readers.h — fault-tolerant streaming dataset readers.
//
// The legacy codecs in dataset_io.h abort a whole load on the first
// malformed line; that is unusable on real exports (six years of Atlas
// echo records, billions of CDN tuples) where some fraction of lines is
// always damaged. These readers recover per record instead of per file:
//
//  * every malformed line is CLASSIFIED (oversize line, bad field count,
//    unparsable number, unparsable address, out-of-range hour/day,
//    duplicate), counted into per-reason `ingest.reject.<reason>` metrics,
//    and optionally appended with its 1-based line number to a quarantine
//    sink for offline inspection;
//  * rejection is bounded by an ERROR BUDGET: more than
//    `max_consecutive_rejects` back-to-back bad lines, or a final reject
//    fraction above `max_reject_fraction`, turns the load into a
//    `core::Status` failure carrying the first few offending lines — a
//    mostly-broken file fails loudly instead of yielding a quietly empty
//    dataset;
//  * reading is BOUNDS-HARDENED: lines are read through a fixed-size
//    buffer (an unterminated gigabyte "line" is rejected, not buffered),
//    field splitting is capped (csv.h), and CRLF line endings / a UTF-8
//    BOM on the header are tolerated.
//
// File format: the dataset_io.h schemas, plus optional '#'-prefixed
// metadata lines so datasets survive a round trip through CSV:
//   #probe,<id>            declares a probe (keeps empty histories alive)
//   #tags,<id>,t1;t2       Atlas probe tags (the sanitizer filters on them)
//   #log,<asn>             declares a CDN association log
// Unknown '#' lines are skipped. Repeated header lines are tolerated, so
// concatenating exports (`cat a.csv b.csv`) is a valid dataset.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "atlas/echo.h"
#include "cdn/rum.h"
#include "core/status.h"
#include "obs/metrics.h"

namespace dynamips::io {

/// Why one line was rejected. Names (reject_reason_name) double as the
/// metric suffix: `ingest.reject.bad_address` etc.
enum class RejectReason : std::uint8_t {
  kOversizeLine = 0,  ///< longer than ReaderOptions::max_line_bytes
  kBadFieldCount,     ///< wrong number of CSV fields (or oversplit)
  kBadNumber,         ///< unparsable id / hour / day / asn / family field
  kBadAddress,        ///< unparsable IPv4/IPv6 address or prefix
  kOutOfRange,        ///< hour/day beyond the configured plausibility cap
  kDuplicate,         ///< repeats an already-accepted record
};
inline constexpr std::size_t kRejectReasonCount = 6;

std::string_view reject_reason_name(RejectReason reason);

/// One rejected line, as kept for Status messages and tests.
struct RejectedLine {
  std::uint64_t line_number = 0;  ///< 1-based physical line in the stream
  RejectReason reason = RejectReason::kBadFieldCount;
  std::string text;  ///< truncated to ReaderOptions::keep_text_bytes
};

struct ReaderOptions {
  /// Lines longer than this are rejected as kOversizeLine without ever
  /// being buffered whole (the reader skips to the next newline).
  std::size_t max_line_bytes = 4096;
  /// Field-split cap forwarded to split_csv().
  std::size_t max_fields = 16;

  // --- error budget -----------------------------------------------------
  /// Maximum tolerated reject share of data lines, evaluated at finish():
  /// strictly more than `max_reject_fraction * data_lines` rejects fails
  /// the load (a load exactly at the budget passes).
  double max_reject_fraction = 0.01;
  /// Strictly more than this many back-to-back rejects aborts the load
  /// immediately (fail-fast on a file that is garbage from some offset).
  std::uint64_t max_consecutive_rejects = 100;

  // --- plausibility caps ------------------------------------------------
  /// Echo records with hour above this are kOutOfRange (~23 years).
  std::uint64_t max_hour = 200000;
  /// Association records with day above this are kOutOfRange (~100 years).
  std::uint32_t max_day = 36500;
  /// Reject an assoc data line that is byte-equal to the immediately
  /// preceding accepted one (kDuplicate). Off by default: repeated tuples
  /// are legitimate hit-weight multiplicity in our exports. Turn on for
  /// datasets aggregated to unique (v4_24, v6_64, day) tuples, where an
  /// adjacent repeat is the signature of a duplicated export row.
  bool assoc_dedup_adjacent = false;

  // --- reporting --------------------------------------------------------
  /// How many offending lines to keep verbatim for the failure Status.
  std::size_t keep_first_rejects = 5;
  /// Bytes of each offending line kept / quarantined.
  std::size_t keep_text_bytes = 160;
  /// When non-null, every rejected line is appended as
  /// "<source>,<line_number>,<reason>,<text>" (source may be empty).
  std::ostream* quarantine = nullptr;
  /// Disk-pressure valve (core/resource.h): suppress quarantine appends
  /// while keeping every reject counted — the shed volume lands in
  /// IngestStats::quarantine_shed and `ingest.quarantine_shed`, so the
  /// degradation is observable, never silent.
  bool shed_quarantine = false;
  /// First quarantine column, typically the input file name.
  std::string source_label;
  /// When non-null, ingest.* counters are recorded here.
  obs::MetricsSink* metrics = nullptr;
};

/// Ingestion accounting for one or more reader passes.
struct IngestStats {
  std::uint64_t lines_seen = 0;     ///< physical lines, everything included
  std::uint64_t data_lines = 0;     ///< lines that were record candidates
  std::uint64_t records_accepted = 0;
  std::uint64_t headers_skipped = 0;
  std::uint64_t meta_lines = 0;     ///< '#' lines (incl. unknown comments)
  std::uint64_t blank_lines = 0;
  std::uint64_t quarantined = 0;
  /// Quarantine appends suppressed by ReaderOptions::shed_quarantine.
  std::uint64_t quarantine_shed = 0;
  /// Wall time the caller spent in the load phase (filled by the file-study
  /// entrypoints, summed across files). Pure diagnostics — lets tools report
  /// ingest-phase records/sec without a metrics registry; never affects
  /// results or fingerprints.
  std::uint64_t load_wall_ns = 0;
  std::array<std::uint64_t, kRejectReasonCount> rejects{};
  std::vector<RejectedLine> first_rejects;  ///< first keep_first_rejects

  std::uint64_t total_rejects() const {
    std::uint64_t total = 0;
    for (std::uint64_t r : rejects) total += r;
    return total;
  }
  std::uint64_t rejects_for(RejectReason reason) const {
    return rejects[std::size_t(reason)];
  }

  /// Aggregate another pass (e.g. a second input file).
  void merge(const IngestStats& other);

  /// One human-readable line, e.g.
  /// "1204 records, 7 rejected (3 bad_address, 4 duplicate), 7 quarantined".
  std::string summary() const;
};

namespace detail {

/// Reject classification, quarantine, and error-budget accounting — ONE
/// shared implementation for every ingest surface. The CSV readers feed it
/// per line (through LineCursor below); the columnar readers (columnar.h)
/// feed it per decoded row. Both therefore count into the same
/// `ingest.reject.<reason>` metric names, trip the same
/// `max_consecutive_rejects` cap (strictly more than the cap of
/// back-to-back rejects fails immediately), and evaluate the same
/// `max_reject_fraction` budget at finish() — no divergent counters, no
/// second classification table. `unit` only flavors messages ("line" for
/// text streams, "record" for columnar batches).
class RejectLedger {
 public:
  RejectLedger(const ReaderOptions& options, std::string_view label,
               std::string_view unit);

  /// One physical unit consumed (line read / row visited).
  void count_unit() {
    ++stats_.lines_seen;
    if (lines_counter_) lines_counter_->add(1);
  }
  /// Mark the current unit as a record candidate (budget denominator).
  void count_data() { ++stats_.data_lines; }

  void reject(RejectReason reason, std::string_view text,
              std::uint64_t position);
  void accept() {
    ++stats_.records_accepted;
    consecutive_rejects_ = 0;
    if (accepted_counter_) accepted_counter_->add(1);
  }
  /// Clean-batch fast path: account `n` validated records at once (the
  /// columnar readers take it when a whole batch passed the column-wise
  /// validation scans). Equivalent to n count_unit/count_data/accept
  /// triples.
  void accept_bulk(std::uint64_t n) {
    stats_.lines_seen += n;
    stats_.data_lines += n;
    stats_.records_accepted += n;
    consecutive_rejects_ = 0;
    if (lines_counter_) lines_counter_->add(n);
    if (accepted_counter_) accepted_counter_->add(n);
  }

  bool tripped() const { return !fatal_.ok(); }
  const core::Status& fatal() const { return fatal_; }
  /// Trip the ledger with an external failure (e.g. an injected IO error):
  /// tripped()/finish() report it exactly like a budget trip.
  void fail(core::Status status) { fatal_ = std::move(status); }

  /// Evaluate the end-of-input error budget; returns the fatal status if
  /// the ledger tripped mid-input.
  core::Status finish() const;

  IngestStats& stats() { return stats_; }
  const IngestStats& stats() const { return stats_; }
  const ReaderOptions& options() const { return options_; }

 private:
  std::string format_offenders() const;

  ReaderOptions options_;
  std::string label_;
  std::string unit_;
  IngestStats stats_;
  std::uint64_t consecutive_rejects_ = 0;
  core::Status fatal_;
  obs::Counter* lines_counter_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;
};

/// Line-level machinery shared by both CSV readers: bounded line fetch with
/// CRLF/BOM tolerance, delegating all reject accounting to RejectLedger.
class LineCursor {
 public:
  LineCursor(std::istream& is, const ReaderOptions& options,
             std::string_view label);

  /// Fetch the next non-blank line (CR/BOM stripped). Oversize lines are
  /// rejected internally and skipped. Returns false at end of stream or
  /// once the consecutive-reject cap has tripped.
  bool next_line(std::string_view& line);

  void reject(RejectReason reason, std::string_view text) {
    ledger_.reject(reason, text, ledger_.stats().lines_seen);
  }
  void accept() { ledger_.accept(); }
  void count_header() { ++ledger_.stats().headers_skipped; }
  void count_meta() { ++ledger_.stats().meta_lines; }
  /// Mark the current line as a record candidate (call before accept or
  /// reject so the budget denominator counts it).
  void count_data_line() { ledger_.count_data(); }

  bool tripped() const { return ledger_.tripped(); }
  std::uint64_t line_number() const { return ledger_.stats().lines_seen; }

  /// Evaluate the end-of-stream error budget; returns the fatal status if
  /// the cursor tripped mid-stream.
  core::Status finish() const { return ledger_.finish(); }

  const IngestStats& stats() const { return ledger_.stats(); }

 private:
  std::istream& is_;
  RejectLedger ledger_;
  std::string label_;
  std::vector<char> buffer_;
};

}  // namespace detail

/// Streaming reader for the echo schema
/// (`probe_id,hour,family,x_client_ip,src_addr`). A duplicate is a second
/// record for an already-seen (probe_id, hour, family) key — the schema
/// allows at most one measurement per probe, hour and family.
class EchoReader {
 public:
  explicit EchoReader(std::istream& is, ReaderOptions options = {});

  /// Next accepted record; nullopt at end of stream or once the error
  /// budget tripped (distinguish via finish()).
  std::optional<atlas::EchoRecord> next();

  /// Final verdict: OK, or a Status describing the budget violation with
  /// the first offending lines. Call after next() returned nullopt.
  core::Status finish() const { return cursor_.finish(); }

  const IngestStats& stats() const { return cursor_.stats(); }

  /// Probe ids in order of first appearance (declaration or first record).
  const std::vector<std::uint32_t>& probe_order() const {
    return probe_order_;
  }
  /// Tags declared for a probe via "#tags" lines (empty when none),
  /// interned through core::tag_pool().
  const std::vector<core::TagId>& tags_for(std::uint32_t probe_id) const;

 private:
  void handle_meta(std::string_view line);
  void note_probe(std::uint32_t probe_id);

  detail::LineCursor cursor_;
  ReaderOptions options_;
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint64_t>> seen_;
  std::vector<std::uint32_t> probe_order_;
  std::unordered_set<std::uint32_t> known_probes_;
  std::unordered_map<std::uint32_t, std::vector<core::TagId>> tags_;
};

/// Streaming reader for the association schema
/// (`day,v4_24,v6_64,asn4,asn6`). With `assoc_dedup_adjacent` set, a data
/// line byte-equal to the immediately preceding accepted line is rejected
/// as a duplicate (the signature of a duplicated export row in a dataset
/// aggregated to unique tuples; non-adjacent repeats are always kept).
class AssocReader {
 public:
  explicit AssocReader(std::istream& is, ReaderOptions options = {});

  std::optional<cdn::AssociationRecord> next();
  core::Status finish() const { return cursor_.finish(); }
  const IngestStats& stats() const { return cursor_.stats(); }

  /// Log ASNs (keyed on asn6, the side the CDN attributes the /64 to) in
  /// order of first appearance.
  const std::vector<bgp::Asn>& log_order() const { return log_order_; }

 private:
  void handle_meta(std::string_view line);
  void note_log(bgp::Asn asn);

  detail::LineCursor cursor_;
  ReaderOptions options_;
  std::string last_accepted_line_;
  std::vector<bgp::Asn> log_order_;
  std::unordered_set<bgp::Asn> known_logs_;
};

// --------------------------------------------------------------- datasets

/// Load a whole multi-probe echo stream: records grouped into one
/// ProbeSeries per probe (first-appearance order), tags attached, records
/// stably sorted by hour. Fails only when the error budget is exceeded.
/// `stats`, when non-null, receives the accounting even on failure.
core::Expected<std::vector<atlas::ProbeSeries>> read_echo_dataset(
    std::istream& is, const ReaderOptions& options = {},
    IngestStats* stats = nullptr);

/// Load a whole association stream: records grouped into one
/// AssociationLog per origin ASN (asn6, first-appearance order), records
/// stably sorted by day. The logs' mobile/registry attribution is left for
/// the caller (as with dataset_io.h's read_assoc_csv).
core::Expected<std::vector<cdn::AssociationLog>> read_assoc_dataset(
    std::istream& is, const ReaderOptions& options = {},
    IngestStats* stats = nullptr);

/// Append `more` into `into`, merging series of the same probe id (records
/// appended, first tags win) — for datasets split across several files.
void merge_echo_datasets(std::vector<atlas::ProbeSeries>& into,
                         std::vector<atlas::ProbeSeries>&& more);

/// Append `more` into `into`, merging logs of the same ASN.
void merge_assoc_datasets(std::vector<cdn::AssociationLog>& into,
                          std::vector<cdn::AssociationLog>&& more);

/// Write a multi-probe dataset: one header, then per probe a "#probe"
/// declaration, optional "#tags", and its records. read_echo_dataset
/// round-trips this exactly (including empty and tagged probes).
void write_echo_dataset(std::ostream& os,
                        const std::vector<atlas::ProbeSeries>& dataset);

/// Write a multi-ISP association dataset ("#log" declarations + records).
void write_assoc_dataset(std::ostream& os,
                         const std::vector<cdn::AssociationLog>& dataset);

}  // namespace dynamips::io
