// results_io.h — CSV export of analysis artifacts.
//
// The paper's supplemental release ships processed findings; this module
// provides the equivalent: every figure/table's underlying series can be
// written as plain CSV for external plotting (the tools/dynamips_study
// driver writes one file per artifact).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "core/assoc.h"
#include "core/pipeline.h"
#include "core/spatial.h"
#include "stats/ttf.h"

namespace dynamips::io {

/// Fig. 1 series: one row per (AS, split, threshold) with the cumulative
/// total time fraction. Splits are "v4_nds", "v4_ds", "v6".
void write_duration_curves_csv(std::ostream& os, const core::AtlasStudy& study);

/// Fig. 5 series: one row per (AS, CPL) with change and probe counts.
void write_cpl_csv(std::ostream& os, const core::AtlasStudy& study);

/// Table 2: one row per AS with the three crossing percentages.
void write_bgp_moves_csv(std::ostream& os, const core::AtlasStudy& study);

/// Fig. 6/9 series: one row per (AS, inferred length) with probe counts.
void write_inference_csv(std::ostream& os, const core::AtlasStudy& study);

/// Fig. 2/3 inputs: one row per (ASN, duration-days) sample.
void write_assoc_durations_csv(std::ostream& os,
                               const core::CdnStudy& study);

/// Fig. 4 inputs: one row per /24 with its degree and access class.
void write_degrees_csv(std::ostream& os, const core::CdnStudy& study);

/// Fig. 7: one row per (registry, class, boundary) with fractions.
void write_zero_boundaries_csv(std::ostream& os,
                               const core::CdnStudy& study);

}  // namespace dynamips::io
