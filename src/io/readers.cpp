#include "io/readers.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/failpoint.h"
#include "io/csv.h"
#include "io/dataset_io.h"

namespace dynamips::io {

std::string_view reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kOversizeLine: return "oversize_line";
    case RejectReason::kBadFieldCount: return "bad_field_count";
    case RejectReason::kBadNumber: return "bad_number";
    case RejectReason::kBadAddress: return "bad_address";
    case RejectReason::kOutOfRange: return "out_of_range";
    case RejectReason::kDuplicate: return "duplicate";
  }
  return "unknown";
}

void IngestStats::merge(const IngestStats& other) {
  lines_seen += other.lines_seen;
  data_lines += other.data_lines;
  records_accepted += other.records_accepted;
  headers_skipped += other.headers_skipped;
  meta_lines += other.meta_lines;
  blank_lines += other.blank_lines;
  quarantined += other.quarantined;
  quarantine_shed += other.quarantine_shed;
  load_wall_ns += other.load_wall_ns;
  for (std::size_t i = 0; i < kRejectReasonCount; ++i)
    rejects[i] += other.rejects[i];
  first_rejects.insert(first_rejects.end(), other.first_rejects.begin(),
                       other.first_rejects.end());
}

std::string IngestStats::summary() const {
  std::string out = std::to_string(records_accepted);
  out += " records, ";
  out += std::to_string(total_rejects());
  out += " rejected";
  if (total_rejects() > 0) {
    out += " (";
    bool first = true;
    for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
      if (rejects[i] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += std::to_string(rejects[i]);
      out += ' ';
      out += reject_reason_name(RejectReason(i));
    }
    out += ")";
  }
  if (quarantined > 0) {
    out += ", ";
    out += std::to_string(quarantined);
    out += " quarantined";
  }
  if (quarantine_shed > 0) {
    out += ", ";
    out += std::to_string(quarantine_shed);
    out += " quarantine writes shed (disk pressure)";
  }
  return out;
}

namespace detail {

RejectLedger::RejectLedger(const ReaderOptions& options,
                           std::string_view label, std::string_view unit)
    : options_(options), label_(label), unit_(unit) {
  if (options_.metrics) {
    lines_counter_ = &options_.metrics->counter("ingest.lines");
    accepted_counter_ = &options_.metrics->counter("ingest.records");
  }
}

void RejectLedger::reject(RejectReason reason, std::string_view text,
                          std::uint64_t position) {
  ++stats_.rejects[std::size_t(reason)];
  std::string_view kept = text.substr(0, options_.keep_text_bytes);
  if (stats_.first_rejects.size() < options_.keep_first_rejects) {
    stats_.first_rejects.push_back(
        RejectedLine{position, reason, std::string(kept)});
  }
  if (options_.metrics) {
    std::string name = "ingest.reject.";
    name += reject_reason_name(reason);
    options_.metrics->counter(name).add(1);
  }
  if (options_.quarantine) {
    if (options_.shed_quarantine) {
      // Disk pressure: the reject above is still counted; only the
      // diagnostic copy of the line is dropped.
      ++stats_.quarantine_shed;
      if (options_.metrics)
        options_.metrics->counter("ingest.quarantine_shed").add(1);
    } else {
      (*options_.quarantine) << options_.source_label << ',' << position
                             << ',' << reject_reason_name(reason) << ','
                             << kept << '\n';
      ++stats_.quarantined;
      if (options_.metrics)
        options_.metrics->counter("ingest.quarantined").add(1);
    }
  }
  ++consecutive_rejects_;
  if (consecutive_rejects_ > options_.max_consecutive_rejects) {
    std::string msg = label_;
    msg += ": ";
    msg += std::to_string(consecutive_rejects_);
    msg += " consecutive malformed ";
    msg += unit_;
    msg += "s (cap ";
    msg += std::to_string(options_.max_consecutive_rejects);
    msg += "), last at ";
    msg += unit_;
    msg += " ";
    msg += std::to_string(position);
    msg += format_offenders();
    fatal_ = core::Status(core::StatusCode::kDataLoss, std::move(msg));
  }
}

core::Status RejectLedger::finish() const {
  if (tripped()) return fatal_;
  const std::uint64_t rejected = stats_.total_rejects();
  if (rejected == 0) return core::Status::Ok();
  const double budget =
      options_.max_reject_fraction * static_cast<double>(stats_.data_lines);
  if (static_cast<double>(rejected) <= budget) return core::Status::Ok();
  std::string msg = label_;
  msg += ": ";
  msg += std::to_string(rejected);
  msg += " of ";
  msg += std::to_string(stats_.data_lines);
  msg += " data ";
  msg += unit_;
  msg += "s rejected, over budget (max_reject_fraction=";
  std::ostringstream frac;
  frac << options_.max_reject_fraction;
  msg += frac.str();
  msg += ")";
  msg += format_offenders();
  return core::Status(core::StatusCode::kDataLoss, std::move(msg));
}

std::string RejectLedger::format_offenders() const {
  if (stats_.first_rejects.empty()) return {};
  std::string out = "; first offenders:";
  for (const auto& r : stats_.first_rejects) {
    out += " ";
    out += unit_;
    out += " ";
    out += std::to_string(r.line_number);
    out += " [";
    out += reject_reason_name(r.reason);
    out += "] \"";
    out += r.text;
    out += "\"";
  }
  return out;
}

LineCursor::LineCursor(std::istream& is, const ReaderOptions& options,
                       std::string_view label)
    : is_(is), ledger_(options, label, "line"), label_(label) {
  // +1 slack so that a line of exactly max_line_bytes fits and only a
  // strictly longer one trips getline's failbit.
  buffer_.resize(options.max_line_bytes + 2);
}

bool LineCursor::next_line(std::string_view& line) {
  while (!tripped()) {
    if (auto fp = core::failpoint("readers.line"); fp) {
      if (fp.is_error()) {
        std::string msg = label_;
        msg += ": injected read failure (";
        msg += fp.errno_name();
        msg += ") at line ";
        msg += std::to_string(ledger_.stats().lines_seen + 1);
        ledger_.fail(core::Status(core::StatusCode::kInternal,
                                  std::move(msg)));
        return false;
      }
      core::failpoint_sleep(fp);
    }
    is_.getline(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    std::size_t got = static_cast<std::size_t>(is_.gcount());
    if (got == 0 && !is_.good()) return false;  // clean end of stream
    ledger_.count_unit();
    if (is_.fail() && !is_.eof()) {
      // The line exceeded the buffer: reject what we buffered, then skip
      // the remainder without ever holding more than the buffer.
      std::string_view head(buffer_.data(), got);
      is_.clear();
      is_.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      ledger_.count_data();
      reject(RejectReason::kOversizeLine, head);
      continue;
    }
    // gcount includes the extracted-but-not-stored '\n' delimiter; a final
    // line terminated by EOF instead of '\n' sets eofbit and stores all of
    // its gcount characters.
    std::size_t len = got;
    if (!is_.eof() && len > 0) --len;
    std::string_view text(buffer_.data(), len);
    text = chomp_cr(text);
    if (ledger_.stats().lines_seen == 1) text = strip_utf8_bom(text);
    if (text.empty()) {
      ++ledger_.stats().blank_lines;
      continue;
    }
    line = text;
    return true;
  }
  return false;
}

}  // namespace detail

namespace {

constexpr std::string_view kEchoHeader = "probe_id,";
constexpr std::string_view kAssocHeader = "day,";

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

/// Parse the five echo fields into `rec`; on failure reports why.
bool parse_echo_fields(const std::vector<std::string_view>& f,
                       const ReaderOptions& options, atlas::EchoRecord& rec,
                       RejectReason& why) {
  auto probe = parse_csv_num<std::uint32_t>(f[0]);
  auto hour = parse_csv_num<std::uint64_t>(f[1]);
  if (!probe || !hour) {
    why = RejectReason::kBadNumber;
    return false;
  }
  if (*hour > options.max_hour) {
    why = RejectReason::kOutOfRange;
    return false;
  }
  rec.probe_id = *probe;
  rec.hour = *hour;
  if (f[2] == "4") {
    rec.family = atlas::Family::kV4;
    auto x = net::IPv4Address::parse(f[3]);
    auto s = net::IPv4Address::parse(f[4]);
    if (!x || !s) {
      why = RejectReason::kBadAddress;
      return false;
    }
    rec.x_client_ip4 = *x;
    rec.src_addr4 = *s;
  } else if (f[2] == "6") {
    rec.family = atlas::Family::kV6;
    auto x = net::IPv6Address::parse(f[3]);
    auto s = net::IPv6Address::parse(f[4]);
    if (!x || !s) {
      why = RejectReason::kBadAddress;
      return false;
    }
    rec.x_client_ip6 = *x;
    rec.src_addr6 = *s;
  } else {
    why = RejectReason::kBadNumber;  // family field is not 4 or 6
    return false;
  }
  return true;
}

bool parse_assoc_fields(const std::vector<std::string_view>& f,
                        const ReaderOptions& options,
                        cdn::AssociationRecord& rec, RejectReason& why) {
  auto day = parse_csv_num<std::uint32_t>(f[0]);
  auto asn4 = parse_csv_num<std::uint32_t>(f[3]);
  auto asn6 = parse_csv_num<std::uint32_t>(f[4]);
  if (!day || !asn4 || !asn6) {
    why = RejectReason::kBadNumber;
    return false;
  }
  if (*day > options.max_day) {
    why = RejectReason::kOutOfRange;
    return false;
  }
  auto v4 = net::Prefix4::parse(f[1]);
  auto v6 = net::Prefix6::parse(f[2]);
  if (!v4 || !v6) {
    why = RejectReason::kBadAddress;
    return false;
  }
  rec.day = *day;
  rec.v4_24 = *v4;
  rec.v6_64 = *v6;
  rec.asn4 = *asn4;
  rec.asn6 = *asn6;
  return true;
}

}  // namespace

// ------------------------------------------------------------- EchoReader

EchoReader::EchoReader(std::istream& is, ReaderOptions options)
    : cursor_(is, options, "echo ingest"), options_(std::move(options)) {}

void EchoReader::note_probe(std::uint32_t probe_id) {
  if (known_probes_.insert(probe_id).second) probe_order_.push_back(probe_id);
}

const std::vector<core::TagId>& EchoReader::tags_for(
    std::uint32_t probe_id) const {
  static const std::vector<core::TagId> kNone;
  auto it = tags_.find(probe_id);
  return it == tags_.end() ? kNone : it->second;
}

void EchoReader::handle_meta(std::string_view line) {
  auto f = split_csv(line, options_.max_fields);
  if (f[0] == "#probe" && f.size() == 2) {
    auto pid = parse_csv_num<std::uint32_t>(f[1]);
    if (!pid) {
      cursor_.count_data_line();
      cursor_.reject(RejectReason::kBadNumber, line);
      return;
    }
    note_probe(*pid);
    cursor_.count_meta();
    return;
  }
  if (f[0] == "#tags" && f.size() == 3) {
    auto pid = parse_csv_num<std::uint32_t>(f[1]);
    if (!pid) {
      cursor_.count_data_line();
      cursor_.reject(RejectReason::kBadNumber, line);
      return;
    }
    note_probe(*pid);
    auto& tags = tags_[*pid];
    if (tags.empty()) {
      std::string_view rest = f[2];
      while (!rest.empty()) {
        std::size_t semi = rest.find(';');
        std::string_view tag = rest.substr(0, semi);
        if (!tag.empty()) tags.push_back(core::tag_pool().intern(tag));
        if (semi == std::string_view::npos) break;
        rest.remove_prefix(semi + 1);
      }
    }
    cursor_.count_meta();
    return;
  }
  cursor_.count_meta();  // unknown comment: tolerated
}

std::optional<atlas::EchoRecord> EchoReader::next() {
  std::string_view line;
  while (cursor_.next_line(line)) {
    if (line.front() == '#') {
      handle_meta(line);
      continue;
    }
    if (starts_with(line, kEchoHeader)) {
      cursor_.count_header();
      continue;
    }
    cursor_.count_data_line();
    auto f = split_csv(line, options_.max_fields);
    if (f.size() != 5) {
      cursor_.reject(RejectReason::kBadFieldCount, line);
      continue;
    }
    atlas::EchoRecord rec;
    RejectReason why{};
    if (!parse_echo_fields(f, options_, rec, why)) {
      cursor_.reject(why, line);
      continue;
    }
    const std::uint64_t key =
        (rec.hour << 1) | (rec.family == atlas::Family::kV6 ? 1u : 0u);
    if (!seen_[rec.probe_id].insert(key).second) {
      cursor_.reject(RejectReason::kDuplicate, line);
      continue;
    }
    note_probe(rec.probe_id);
    cursor_.accept();
    return rec;
  }
  return std::nullopt;
}

// ------------------------------------------------------------ AssocReader

AssocReader::AssocReader(std::istream& is, ReaderOptions options)
    : cursor_(is, options, "assoc ingest"), options_(std::move(options)) {}

void AssocReader::note_log(bgp::Asn asn) {
  if (known_logs_.insert(asn).second) log_order_.push_back(asn);
}

void AssocReader::handle_meta(std::string_view line) {
  auto f = split_csv(line, options_.max_fields);
  if (f[0] == "#log" && f.size() == 2) {
    auto asn = parse_csv_num<bgp::Asn>(f[1]);
    if (!asn) {
      cursor_.count_data_line();
      cursor_.reject(RejectReason::kBadNumber, line);
      return;
    }
    note_log(*asn);
    cursor_.count_meta();
    return;
  }
  cursor_.count_meta();
}

std::optional<cdn::AssociationRecord> AssocReader::next() {
  std::string_view line;
  while (cursor_.next_line(line)) {
    if (line.front() == '#') {
      handle_meta(line);
      continue;
    }
    if (starts_with(line, kAssocHeader)) {
      cursor_.count_header();
      continue;
    }
    cursor_.count_data_line();
    auto f = split_csv(line, options_.max_fields);
    if (f.size() != 5) {
      cursor_.reject(RejectReason::kBadFieldCount, line);
      continue;
    }
    cdn::AssociationRecord rec;
    RejectReason why{};
    if (!parse_assoc_fields(f, options_, rec, why)) {
      cursor_.reject(why, line);
      continue;
    }
    if (options_.assoc_dedup_adjacent) {
      if (line == last_accepted_line_) {
        cursor_.reject(RejectReason::kDuplicate, line);
        continue;
      }
      last_accepted_line_.assign(line);
    }
    note_log(rec.asn6);
    cursor_.accept();
    return rec;
  }
  return std::nullopt;
}

// --------------------------------------------------------------- datasets

core::Expected<std::vector<atlas::ProbeSeries>> read_echo_dataset(
    std::istream& is, const ReaderOptions& options, IngestStats* stats) {
  EchoReader reader(is, options);
  std::vector<atlas::EchoRecord> records;
  while (auto rec = reader.next()) records.push_back(*rec);
  if (stats) stats->merge(reader.stats());
  core::Status st = reader.finish();
  if (!st.ok()) return st.with_context("load echo dataset");

  std::vector<atlas::ProbeSeries> dataset;
  std::unordered_map<std::uint32_t, std::size_t> index;
  dataset.reserve(reader.probe_order().size());
  for (std::uint32_t pid : reader.probe_order()) {
    index.emplace(pid, dataset.size());
    atlas::ProbeSeries series;
    series.meta.probe_id = pid;
    series.meta.tags = reader.tags_for(pid);
    dataset.push_back(std::move(series));
  }
  for (auto& rec : records)
    dataset[index.at(rec.probe_id)].records.push_back(rec);
  for (auto& series : dataset) {
    std::stable_sort(
        series.records.begin(), series.records.end(),
        [](const atlas::EchoRecord& a, const atlas::EchoRecord& b) {
          return a.hour < b.hour;
        });
  }
  return dataset;
}

core::Expected<std::vector<cdn::AssociationLog>> read_assoc_dataset(
    std::istream& is, const ReaderOptions& options, IngestStats* stats) {
  AssocReader reader(is, options);
  std::vector<cdn::AssociationRecord> records;
  while (auto rec = reader.next()) records.push_back(*rec);
  if (stats) stats->merge(reader.stats());
  core::Status st = reader.finish();
  if (!st.ok()) return st.with_context("load assoc dataset");

  std::vector<cdn::AssociationLog> dataset;
  std::unordered_map<bgp::Asn, std::size_t> index;
  dataset.reserve(reader.log_order().size());
  for (bgp::Asn asn : reader.log_order()) {
    index.emplace(asn, dataset.size());
    cdn::AssociationLog log;
    log.asn = asn;
    dataset.push_back(std::move(log));
  }
  for (auto& rec : records)
    dataset[index.at(rec.asn6)].records.push_back(rec);
  for (auto& log : dataset) {
    std::stable_sort(log.records.begin(), log.records.end(),
                     [](const cdn::AssociationRecord& a,
                        const cdn::AssociationRecord& b) {
                       return a.day < b.day;
                     });
  }
  return dataset;
}

void merge_echo_datasets(std::vector<atlas::ProbeSeries>& into,
                         std::vector<atlas::ProbeSeries>&& more) {
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < into.size(); ++i)
    index.emplace(into[i].meta.probe_id, i);
  for (auto& series : more) {
    auto it = index.find(series.meta.probe_id);
    if (it == index.end()) {
      index.emplace(series.meta.probe_id, into.size());
      into.push_back(std::move(series));
      continue;
    }
    auto& dst = into[it->second];
    if (dst.meta.tags.empty()) dst.meta.tags = std::move(series.meta.tags);
    dst.records.insert(dst.records.end(), series.records.begin(),
                       series.records.end());
    std::stable_sort(
        dst.records.begin(), dst.records.end(),
        [](const atlas::EchoRecord& a, const atlas::EchoRecord& b) {
          return a.hour < b.hour;
        });
  }
}

void merge_assoc_datasets(std::vector<cdn::AssociationLog>& into,
                          std::vector<cdn::AssociationLog>&& more) {
  std::unordered_map<bgp::Asn, std::size_t> index;
  for (std::size_t i = 0; i < into.size(); ++i)
    index.emplace(into[i].asn, i);
  for (auto& log : more) {
    auto it = index.find(log.asn);
    if (it == index.end()) {
      index.emplace(log.asn, into.size());
      into.push_back(std::move(log));
      continue;
    }
    auto& dst = into[it->second];
    dst.records.insert(dst.records.end(), log.records.begin(),
                       log.records.end());
    std::stable_sort(dst.records.begin(), dst.records.end(),
                     [](const cdn::AssociationRecord& a,
                        const cdn::AssociationRecord& b) {
                       return a.day < b.day;
                     });
  }
}

void write_echo_dataset(std::ostream& os,
                        const std::vector<atlas::ProbeSeries>& dataset) {
  os << "probe_id,hour,family,x_client_ip,src_addr\n";
  for (const auto& series : dataset) {
    os << "#probe," << series.meta.probe_id << '\n';
    if (!series.meta.tags.empty()) {
      os << "#tags," << series.meta.probe_id << ',';
      for (std::size_t i = 0; i < series.meta.tags.size(); ++i) {
        if (i) os << ';';
        os << core::tag_pool().name_of(series.meta.tags[i]);
      }
      os << '\n';
    }
    for (const auto& rec : series.records) os << to_csv(rec) << '\n';
  }
}

void write_assoc_dataset(std::ostream& os,
                         const std::vector<cdn::AssociationLog>& dataset) {
  os << "day,v4_24,v6_64,asn4,asn6\n";
  for (const auto& log : dataset) {
    os << "#log," << log.asn << '\n';
    for (const auto& rec : log.records) os << to_csv(rec) << '\n';
  }
}

}  // namespace dynamips::io
