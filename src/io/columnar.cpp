#include "io/columnar.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#ifdef __unix__
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "core/intern.h"
#include "io/atomic_file.h"
#include "io/checkpoint.h"

namespace dynamips::io {

namespace {

using core::Expected;
using core::Status;
using core::StatusCode;

// ------------------------------------------------------------ CRC32 (fast)
//
// Same IEEE/reflected polynomial and result as ckpt::crc32 (the unit tests
// assert equality), but slice-by-8: eight table lookups per eight input
// bytes instead of one per byte. Column payloads are the bulk of every
// batch, and verifying their checksums is a fixed cost on the mmap ingest
// path, so it must run at memory speed, not at byte-loop speed.

const std::array<std::array<std::uint32_t, 256>, 8>& crc32_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    t[0] = ckpt::crc32_table();
    for (std::size_t k = 1; k < 8; ++k)
      for (std::size_t i = 0; i < 256; ++i)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    return t;
  }();
  return tables;
}

inline std::uint32_t load_le32(const char* p) {
  return std::uint32_t(std::uint8_t(p[0])) |
         std::uint32_t(std::uint8_t(p[1])) << 8 |
         std::uint32_t(std::uint8_t(p[2])) << 16 |
         std::uint32_t(std::uint8_t(p[3])) << 24;
}

inline std::uint64_t load_le64(const char* p) {
  return std::uint64_t(load_le32(p)) |
         std::uint64_t(load_le32(p + 4)) << 32;
}

std::uint32_t crc32_fast(std::string_view bytes) {
  const auto& t = crc32_tables();
  std::uint32_t c = 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    c ^= load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][c >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) c = t[0][(c ^ std::uint8_t(*p++)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------ column tags

constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return std::uint32_t(std::uint8_t(a)) |
         std::uint32_t(std::uint8_t(b)) << 8 |
         std::uint32_t(std::uint8_t(c)) << 16 |
         std::uint32_t(std::uint8_t(d)) << 24;
}

// group table (shared shape; the id column differs by kind)
constexpr std::uint32_t kColGroupProbe = fourcc('G', 'P', 'I', 'D');
constexpr std::uint32_t kColGroupAsn = fourcc('G', 'A', 'S', 'N');
constexpr std::uint32_t kColGroupRows = fourcc('G', 'C', 'N', 'T');
constexpr std::uint32_t kColGroupTags = fourcc('G', 'T', 'A', 'G');
// echo row columns
constexpr std::uint32_t kColHour = fourcc('H', 'O', 'U', 'R');
constexpr std::uint32_t kColFamily = fourcc('F', 'A', 'M', '_');
constexpr std::uint32_t kColX4 = fourcc('X', '4', '_', '_');
constexpr std::uint32_t kColS4 = fourcc('S', '4', '_', '_');
constexpr std::uint32_t kColX6Hi = fourcc('X', '6', 'H', 'I');
constexpr std::uint32_t kColX6Lo = fourcc('X', '6', 'L', 'O');
constexpr std::uint32_t kColS6Hi = fourcc('S', '6', 'H', 'I');
constexpr std::uint32_t kColS6Lo = fourcc('S', '6', 'L', 'O');
// assoc row columns
constexpr std::uint32_t kColDay = fourcc('D', 'A', 'Y', '_');
constexpr std::uint32_t kColV4Addr = fourcc('V', '4', 'A', '_');
constexpr std::uint32_t kColV4Len = fourcc('V', '4', 'L', '_');
constexpr std::uint32_t kColV6Hi = fourcc('V', '6', 'H', 'I');
constexpr std::uint32_t kColV6Lo = fourcc('V', '6', 'L', 'O');
constexpr std::uint32_t kColV6Len = fourcc('V', '6', 'L', '_');
constexpr std::uint32_t kColAsn4 = fourcc('A', 'S', '4', '_');
constexpr std::uint32_t kColAsn6 = fourcc('A', 'S', '6', '_');

constexpr std::size_t kAlign = 64;
constexpr std::uint32_t kMaxColumns = 64;

std::string tag_name(std::uint32_t tag) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    char c = char((tag >> (8 * i)) & 0xFF);
    s[i] = (c >= 32 && c < 127) ? c : '?';
  }
  return s;
}

// ---------------------------------------------------------------- encoding

/// Append-only little-endian column buffer (reserve-friendly raw appends;
/// ckpt::Writer pushes byte by byte, which is fine for the small tag blob
/// but not for multi-hundred-megabyte row columns).
struct ColBuf {
  std::string bytes;

  void u8(std::uint8_t v) { bytes.push_back(char(v)); }
  void u32(std::uint32_t v) {
    char b[4] = {char(v & 0xFF), char((v >> 8) & 0xFF), char((v >> 16) & 0xFF),
                 char((v >> 24) & 0xFF)};
    bytes.append(b, 4);
  }
  void u64(std::uint64_t v) {
    u32(std::uint32_t(v));
    u32(std::uint32_t(v >> 32));
  }
};

struct Column {
  std::uint32_t tag = 0;
  std::string payload;
};

std::string assemble(std::uint32_t kind, std::uint64_t rows,
                     std::uint64_t groups, std::vector<Column>&& columns) {
  // header size: magic + version + kind + rows + groups + ncols +
  // directory + header crc
  const std::size_t header_size = 8 + 4 + 4 + 8 + 8 + 4 +
                                  columns.size() * (4 + 8 + 8 + 4) + 4;
  std::vector<std::uint64_t> offsets(columns.size());
  std::size_t cursor = header_size;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    cursor = (cursor + kAlign - 1) / kAlign * kAlign;
    offsets[i] = cursor;
    cursor += columns[i].payload.size();
  }

  ColBuf head;
  head.bytes.reserve(header_size);
  head.bytes.append(kColumnarMagic);
  head.u32(kColumnarVersion);
  head.u32(kind);
  head.u64(rows);
  head.u64(groups);
  head.u32(std::uint32_t(columns.size()));
  for (std::size_t i = 0; i < columns.size(); ++i) {
    head.u32(columns[i].tag);
    head.u64(offsets[i]);
    head.u64(columns[i].payload.size());
    head.u32(crc32_fast(columns[i].payload));
  }
  head.u32(crc32_fast(head.bytes));

  std::string out;
  out.reserve(cursor);
  out = std::move(head.bytes);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out.resize(offsets[i], '\0');  // alignment padding
    out += columns[i].payload;
  }
  return out;
}

}  // namespace

bool is_columnar_path(std::string_view path) {
  return path.size() >= 4 && path.substr(path.size() - 4) == ".col";
}

std::string encode_echo_columnar(
    const std::vector<atlas::ProbeSeries>& dataset) {
  std::uint64_t rows = 0;
  for (const auto& series : dataset) rows += series.records.size();

  ColBuf gid, gcnt, hour, fam, x4, s4, x6hi, x6lo, s6hi, s6lo;
  ckpt::Writer tags;
  gid.bytes.reserve(dataset.size() * 4);
  gcnt.bytes.reserve(dataset.size() * 8);
  hour.bytes.reserve(rows * 8);
  fam.bytes.reserve(rows);
  x4.bytes.reserve(rows * 4);
  s4.bytes.reserve(rows * 4);
  x6hi.bytes.reserve(rows * 8);
  x6lo.bytes.reserve(rows * 8);
  s6hi.bytes.reserve(rows * 8);
  s6lo.bytes.reserve(rows * 8);

  for (const auto& series : dataset) {
    gid.u32(series.meta.probe_id);
    gcnt.u64(series.records.size());
    tags.u64(series.meta.tags.size());
    for (core::TagId tag : series.meta.tags)
      tags.str(core::tag_pool().name_of(tag));
    for (const auto& rec : series.records) {
      hour.u64(rec.hour);
      fam.u8(rec.family == atlas::Family::kV6 ? 1 : 0);
      x4.u32(rec.x_client_ip4.value());
      s4.u32(rec.src_addr4.value());
      x6hi.u64(rec.x_client_ip6.bits().hi);
      x6lo.u64(rec.x_client_ip6.bits().lo);
      s6hi.u64(rec.src_addr6.bits().hi);
      s6lo.u64(rec.src_addr6.bits().lo);
    }
  }

  std::vector<Column> cols;
  cols.push_back({kColGroupProbe, std::move(gid.bytes)});
  cols.push_back({kColGroupRows, std::move(gcnt.bytes)});
  cols.push_back({kColGroupTags, tags.take()});
  cols.push_back({kColHour, std::move(hour.bytes)});
  cols.push_back({kColFamily, std::move(fam.bytes)});
  cols.push_back({kColX4, std::move(x4.bytes)});
  cols.push_back({kColS4, std::move(s4.bytes)});
  cols.push_back({kColX6Hi, std::move(x6hi.bytes)});
  cols.push_back({kColX6Lo, std::move(x6lo.bytes)});
  cols.push_back({kColS6Hi, std::move(s6hi.bytes)});
  cols.push_back({kColS6Lo, std::move(s6lo.bytes)});
  return assemble(kColumnarKindEcho, rows, dataset.size(), std::move(cols));
}

std::string encode_assoc_columnar(
    const std::vector<cdn::AssociationLog>& dataset) {
  std::uint64_t rows = 0;
  for (const auto& log : dataset) rows += log.records.size();

  ColBuf gasn, gcnt, day, v4a, v4l, v6hi, v6lo, v6l, as4, as6;
  gasn.bytes.reserve(dataset.size() * 4);
  gcnt.bytes.reserve(dataset.size() * 8);
  day.bytes.reserve(rows * 4);
  v4a.bytes.reserve(rows * 4);
  v4l.bytes.reserve(rows);
  v6hi.bytes.reserve(rows * 8);
  v6lo.bytes.reserve(rows * 8);
  v6l.bytes.reserve(rows);
  as4.bytes.reserve(rows * 4);
  as6.bytes.reserve(rows * 4);

  for (const auto& log : dataset) {
    gasn.u32(log.asn);
    gcnt.u64(log.records.size());
    // mobile/registry are grafted from the run config at analysis time and
    // subscriber is test-only ground truth; none are in the CSV schema and
    // none are serialized here — columnar and CSV exports carry identical
    // information.
    for (const auto& rec : log.records) {
      day.u32(rec.day);
      v4a.u32(rec.v4_24.address().value());
      v4l.u8(std::uint8_t(rec.v4_24.length()));
      v6hi.u64(rec.v6_64.address().bits().hi);
      v6lo.u64(rec.v6_64.address().bits().lo);
      v6l.u8(std::uint8_t(rec.v6_64.length()));
      as4.u32(rec.asn4);
      as6.u32(rec.asn6);
    }
  }

  std::vector<Column> cols;
  cols.push_back({kColGroupAsn, std::move(gasn.bytes)});
  cols.push_back({kColGroupRows, std::move(gcnt.bytes)});
  cols.push_back({kColDay, std::move(day.bytes)});
  cols.push_back({kColV4Addr, std::move(v4a.bytes)});
  cols.push_back({kColV4Len, std::move(v4l.bytes)});
  cols.push_back({kColV6Hi, std::move(v6hi.bytes)});
  cols.push_back({kColV6Lo, std::move(v6lo.bytes)});
  cols.push_back({kColV6Len, std::move(v6l.bytes)});
  cols.push_back({kColAsn4, std::move(as4.bytes)});
  cols.push_back({kColAsn6, std::move(as6.bytes)});
  return assemble(kColumnarKindAssoc, rows, dataset.size(), std::move(cols));
}

namespace {

Status write_bytes_atomic(const std::string& path, const std::string& bytes) {
  AtomicFileWriter out(path);
  if (!out.ok())
    return Status(StatusCode::kInternal, "cannot open for write: " + path);
  out.stream().write(bytes.data(), std::streamsize(bytes.size()));
  return out.commit();
}

}  // namespace

Status write_echo_columnar(const std::string& path,
                           const std::vector<atlas::ProbeSeries>& dataset) {
  return write_bytes_atomic(path, encode_echo_columnar(dataset));
}

Status write_assoc_columnar(const std::string& path,
                            const std::vector<cdn::AssociationLog>& dataset) {
  return write_bytes_atomic(path, encode_assoc_columnar(dataset));
}

// -------------------------------------------------------------- structure

namespace {

struct ColView {
  const char* data = nullptr;
  std::uint64_t length = 0;

  std::uint8_t u8(std::uint64_t i) const {
    return std::uint8_t(data[i]);
  }
  std::uint32_t u32(std::uint64_t i) const { return load_le32(data + i * 4); }
  std::uint64_t u64(std::uint64_t i) const { return load_le64(data + i * 8); }
};

struct Batch {
  std::uint32_t kind = 0;
  std::uint64_t rows = 0;
  std::uint64_t groups = 0;
  std::unordered_map<std::uint32_t, ColView> columns;
};

Status data_loss(const std::string& what) {
  return Status(StatusCode::kDataLoss, "columnar batch is corrupt: " + what);
}

/// Validate the container: magic, version, header CRC, directory bounds,
/// per-column CRCs. Everything here is structural — damage is kDataLoss,
/// never a crash and never a partial dataset.
Status parse_structure(std::string_view bytes, std::uint32_t expected_kind,
                       Batch& out) {
  constexpr std::size_t kFixedHeader = 8 + 4 + 4 + 8 + 8 + 4;
  if (bytes.size() < kFixedHeader + 4)
    return data_loss("file truncated before the header");
  if (bytes.substr(0, 8) != kColumnarMagic)
    return data_loss("bad magic (not a columnar batch)");
  const std::uint32_t version = load_le32(bytes.data() + 8);
  if (version != kColumnarVersion)
    return Status(StatusCode::kFailedPrecondition,
                  "columnar batch version " + std::to_string(version) +
                      " is not supported (expected " +
                      std::to_string(kColumnarVersion) + ")");
  out.kind = load_le32(bytes.data() + 12);
  out.rows = load_le64(bytes.data() + 16);
  out.groups = load_le64(bytes.data() + 24);
  const std::uint32_t ncols = load_le32(bytes.data() + 32);
  if (out.kind != kColumnarKindEcho && out.kind != kColumnarKindAssoc)
    return data_loss("unknown kind " + std::to_string(out.kind));
  if (out.kind != expected_kind)
    return Status(StatusCode::kFailedPrecondition,
                  std::string("columnar batch holds ") +
                      (out.kind == kColumnarKindEcho ? "echo" : "assoc") +
                      " data but the " +
                      (expected_kind == kColumnarKindEcho ? "echo" : "assoc") +
                      " reader was asked to load it");
  if (ncols == 0 || ncols > kMaxColumns)
    return data_loss("implausible column count " + std::to_string(ncols));
  // A row or group needs at least one payload byte somewhere; wildly larger
  // counts than the file could hold are corruption (and guard the
  // arithmetic below against overflow).
  if (out.rows > bytes.size() || out.groups > bytes.size())
    return data_loss("row/group count exceeds the file size");

  const std::size_t header_size = kFixedHeader + std::size_t(ncols) * 24 + 4;
  if (bytes.size() < header_size)
    return data_loss("file truncated inside the column directory");
  const std::uint32_t stored_header_crc =
      load_le32(bytes.data() + header_size - 4);
  if (crc32_fast(bytes.substr(0, header_size - 4)) != stored_header_crc)
    return data_loss("header checksum mismatch");

  const char* dir = bytes.data() + kFixedHeader;
  for (std::uint32_t i = 0; i < ncols; ++i) {
    const char* e = dir + std::size_t(i) * 24;
    const std::uint32_t tag = load_le32(e);
    const std::uint64_t offset = load_le64(e + 4);
    const std::uint64_t length = load_le64(e + 12);
    const std::uint32_t crc = load_le32(e + 20);
    if (offset < header_size || offset > bytes.size() ||
        length > bytes.size() - offset)
      return data_loss("column " + tag_name(tag) + " is out of bounds");
    std::string_view payload = bytes.substr(offset, length);
    if (crc32_fast(payload) != crc)
      return data_loss("column " + tag_name(tag) + " checksum mismatch");
    if (!out.columns.emplace(tag, ColView{payload.data(), length}).second)
      return data_loss("duplicate column " + tag_name(tag));
  }
  return Status::Ok();
}

/// Fetch a fixed-width column and check its length is exactly
/// `count * width` bytes.
Expected<ColView> fixed_column(const Batch& batch, std::uint32_t tag,
                               std::uint64_t count, std::uint64_t width) {
  auto it = batch.columns.find(tag);
  if (it == batch.columns.end())
    return data_loss("missing column " + tag_name(tag));
  if (it->second.length != count * width)
    return data_loss("column " + tag_name(tag) + " holds " +
                     std::to_string(it->second.length) +
                     " bytes, expected " + std::to_string(count * width));
  return it->second;
}

/// Group row counts must tile [0, rows) exactly.
Status check_group_rows(const ColView& gcnt, std::uint64_t groups,
                        std::uint64_t rows) {
  std::uint64_t total = 0;
  for (std::uint64_t g = 0; g < groups; ++g) {
    const std::uint64_t n = gcnt.u64(g);
    if (n > rows - total)
      return data_loss("group row counts exceed the row count");
    total += n;
  }
  if (total != rows)
    return data_loss("group row counts sum to " + std::to_string(total) +
                     ", expected " + std::to_string(rows));
  return Status::Ok();
}

/// Decimal rendering of one row for quarantine/offender reporting — the
/// columnar analog of quoting the offending CSV line.
std::string echo_row_text(std::uint32_t probe, std::uint64_t hour,
                          std::uint8_t fam) {
  return std::to_string(probe) + "," + std::to_string(hour) + ",family=" +
         std::to_string(fam);
}

std::string assoc_row_text(std::uint32_t day, std::uint32_t v4,
                           std::uint8_t l4, std::uint64_t hi, std::uint64_t lo,
                           std::uint8_t l6) {
  return std::to_string(day) + "," + std::to_string(v4) + "/" +
         std::to_string(l4) + "," + std::to_string(hi) + ":" +
         std::to_string(lo) + "/" + std::to_string(l6);
}

}  // namespace

// ------------------------------------------------------------ echo decode

Expected<std::vector<atlas::ProbeSeries>> decode_echo_columnar(
    std::string_view bytes, const ReaderOptions& options,
    IngestStats* stats) {
  Batch batch;
  if (Status st = parse_structure(bytes, kColumnarKindEcho, batch); !st.ok())
    return st.with_context("load echo columnar batch");

  auto need = [&](std::uint32_t tag, std::uint64_t count,
                  std::uint64_t width) {
    return fixed_column(batch, tag, count, width);
  };
  auto gid = need(kColGroupProbe, batch.groups, 4);
  auto gcnt = need(kColGroupRows, batch.groups, 8);
  auto hour = need(kColHour, batch.rows, 8);
  auto fam = need(kColFamily, batch.rows, 1);
  auto x4 = need(kColX4, batch.rows, 4);
  auto s4 = need(kColS4, batch.rows, 4);
  auto x6hi = need(kColX6Hi, batch.rows, 8);
  auto x6lo = need(kColX6Lo, batch.rows, 8);
  auto s6hi = need(kColS6Hi, batch.rows, 8);
  auto s6lo = need(kColS6Lo, batch.rows, 8);
  for (auto* col : {&gid, &gcnt, &hour, &fam, &x4, &s4, &x6hi, &x6lo, &s6hi,
                    &s6lo})
    if (!col->ok())
      return Status(col->status()).with_context("load echo columnar batch");
  auto tags_it = batch.columns.find(kColGroupTags);
  if (tags_it == batch.columns.end())
    return data_loss("missing column " + tag_name(kColGroupTags))
        .with_context("load echo columnar batch");
  if (Status st = check_group_rows(gcnt.value(), batch.groups, batch.rows);
      !st.ok())
    return st.with_context("load echo columnar batch");

  // Group preamble: probe declarations + tags, exactly the role of the
  // CSV `#probe`/`#tags` meta lines (first declaration wins, first tags
  // win, empty groups keep empty histories alive).
  detail::RejectLedger ledger(options, "echo columnar ingest", "record");
  std::vector<atlas::ProbeSeries> dataset;
  std::unordered_map<std::uint32_t, std::size_t> index;
  ckpt::Reader tag_reader(
      std::string_view(tags_it->second.data, tags_it->second.length));
  std::vector<std::size_t> group_series(batch.groups);
  for (std::uint64_t g = 0; g < batch.groups; ++g) {
    const std::uint32_t probe = gid.value().u32(g);
    std::vector<core::TagId> tags;
    const std::uint64_t n_tags = tag_reader.size();
    tags.reserve(n_tags);
    for (std::uint64_t t = 0; t < n_tags; ++t)
      tags.push_back(core::tag_pool().intern(tag_reader.str()));
    if (!tag_reader.ok())
      return data_loss("tag table failed to parse")
          .with_context("load echo columnar batch");
    auto [it, inserted] = index.emplace(probe, dataset.size());
    if (inserted) {
      atlas::ProbeSeries series;
      series.meta.probe_id = probe;
      series.meta.tags = std::move(tags);
      dataset.push_back(std::move(series));
    } else if (dataset[it->second].meta.tags.empty()) {
      dataset[it->second].meta.tags = std::move(tags);
    }
    group_series[g] = it->second;
  }
  if (tag_reader.remaining() != 0)
    return data_loss("tag table has trailing bytes")
        .with_context("load echo columnar batch");

  // Row decode. The echo schema admits at most one measurement per
  // (probe, hour, family) — the same duplicate rule as the CSV reader —
  // so rows pass through the seen-set even on the clean path.
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint64_t>> seen;
  std::uint64_t row = 0;
  for (std::uint64_t g = 0; g < batch.groups && !ledger.tripped(); ++g) {
    const std::uint32_t probe = gid.value().u32(g);
    auto& series = dataset[group_series[g]];
    auto& probe_seen = seen[probe];
    const std::uint64_t n = gcnt.value().u64(g);
    series.records.reserve(series.records.size() + n);
    for (std::uint64_t k = 0; k < n; ++k, ++row) {
      ledger.count_unit();
      ledger.count_data();
      const std::uint8_t f = fam.value().u8(row);
      const std::uint64_t h = hour.value().u64(row);
      if (f > 1) {
        ledger.reject(RejectReason::kBadNumber, echo_row_text(probe, h, f),
                      row + 1);
        if (ledger.tripped()) break;
        continue;
      }
      if (h > options.max_hour) {
        ledger.reject(RejectReason::kOutOfRange, echo_row_text(probe, h, f),
                      row + 1);
        if (ledger.tripped()) break;
        continue;
      }
      const std::uint64_t key = (h << 1) | f;
      if (!probe_seen.insert(key).second) {
        ledger.reject(RejectReason::kDuplicate, echo_row_text(probe, h, f),
                      row + 1);
        if (ledger.tripped()) break;
        continue;
      }
      atlas::EchoRecord rec;
      rec.probe_id = probe;
      rec.hour = h;
      rec.family = atlas::Family(f);
      rec.x_client_ip4 = net::IPv4Address(x4.value().u32(row));
      rec.src_addr4 = net::IPv4Address(s4.value().u32(row));
      rec.x_client_ip6 =
          net::IPv6Address(x6hi.value().u64(row), x6lo.value().u64(row));
      rec.src_addr6 =
          net::IPv6Address(s6hi.value().u64(row), s6lo.value().u64(row));
      series.records.push_back(rec);
      ledger.accept();
    }
  }

  if (stats) stats->merge(ledger.stats());
  if (Status st = ledger.finish(); !st.ok())
    return st.with_context("load echo columnar batch");

  // The writer emits each series hour-sorted, so this is normally a single
  // O(n) scan; the stable_sort only runs on hand-built batches.
  for (auto& series : dataset) {
    auto by_hour = [](const atlas::EchoRecord& a, const atlas::EchoRecord& b) {
      return a.hour < b.hour;
    };
    if (!std::is_sorted(series.records.begin(), series.records.end(), by_hour))
      std::stable_sort(series.records.begin(), series.records.end(), by_hour);
  }
  return dataset;
}

// ----------------------------------------------------------- assoc decode

Expected<std::vector<cdn::AssociationLog>> decode_assoc_columnar(
    std::string_view bytes, const ReaderOptions& options,
    IngestStats* stats) {
  Batch batch;
  if (Status st = parse_structure(bytes, kColumnarKindAssoc, batch); !st.ok())
    return st.with_context("load assoc columnar batch");

  auto gasn = fixed_column(batch, kColGroupAsn, batch.groups, 4);
  auto gcnt = fixed_column(batch, kColGroupRows, batch.groups, 8);
  auto day = fixed_column(batch, kColDay, batch.rows, 4);
  auto v4a = fixed_column(batch, kColV4Addr, batch.rows, 4);
  auto v4l = fixed_column(batch, kColV4Len, batch.rows, 1);
  auto v6hi = fixed_column(batch, kColV6Hi, batch.rows, 8);
  auto v6lo = fixed_column(batch, kColV6Lo, batch.rows, 8);
  auto v6l = fixed_column(batch, kColV6Len, batch.rows, 1);
  auto as4 = fixed_column(batch, kColAsn4, batch.rows, 4);
  auto as6 = fixed_column(batch, kColAsn6, batch.rows, 4);
  for (auto* col :
       {&gasn, &gcnt, &day, &v4a, &v4l, &v6hi, &v6lo, &v6l, &as4, &as6})
    if (!col->ok())
      return Status(col->status()).with_context("load assoc columnar batch");
  if (Status st = check_group_rows(gcnt.value(), batch.groups, batch.rows);
      !st.ok())
    return st.with_context("load assoc columnar batch");

  const ColView& c_day = day.value();
  const ColView& c_v4a = v4a.value();
  const ColView& c_v4l = v4l.value();
  const ColView& c_v6hi = v6hi.value();
  const ColView& c_v6lo = v6lo.value();
  const ColView& c_v6l = v6l.value();
  const ColView& c_as4 = as4.value();
  const ColView& c_as6 = as6.value();

  detail::RejectLedger ledger(options, "assoc columnar ingest", "record");
  std::vector<cdn::AssociationLog> dataset;
  std::unordered_map<bgp::Asn, std::size_t> index;
  auto log_for = [&](bgp::Asn asn) -> std::size_t {
    auto [it, inserted] = index.emplace(asn, dataset.size());
    if (inserted) {
      cdn::AssociationLog log;
      log.asn = asn;
      dataset.push_back(std::move(log));
    }
    return it->second;
  };

  // Column-wise validation scans: branch-free accumulations over the
  // contiguous fixed-width columns (this is the SIMD-able part of the
  // layout — each loop reads one array sequentially and reduces with
  // data-independent arithmetic). When the whole batch is clean and
  // adjacent-dedup is off, rows are accounted in bulk and the decode
  // below runs without any per-row classification.
  std::uint64_t invalid = 0;
  {
    const std::uint32_t max_day = options.max_day;
    for (std::uint64_t i = 0; i < batch.rows; ++i)
      invalid += c_day.u32(i) > max_day;
    for (std::uint64_t i = 0; i < batch.rows; ++i)
      invalid += c_v4l.u8(i) > 32;
    for (std::uint64_t i = 0; i < batch.rows; ++i)
      invalid += c_v6l.u8(i) > 128;
  }

  const bool fast = invalid == 0 && !options.assoc_dedup_adjacent;
  std::uint64_t row = 0;
  if (fast) {
    ledger.accept_bulk(batch.rows);
    for (std::uint64_t g = 0; g < batch.groups; ++g) {
      const bgp::Asn group_asn = gasn.value().u32(g);
      // The CSV reader keys each record on its own asn6 (the side the CDN
      // attributes the /64 to), with the group header merely declaring the
      // log; mirror that exactly, caching the common case where a row's
      // asn6 equals the group's ASN.
      std::size_t target = log_for(group_asn);
      bgp::Asn cached_asn = group_asn;
      const std::uint64_t n = gcnt.value().u64(g);
      dataset[target].records.reserve(dataset[target].records.size() + n);
      for (std::uint64_t k = 0; k < n; ++k, ++row) {
        cdn::AssociationRecord rec;
        rec.day = c_day.u32(row);
        rec.v4_24 =
            net::Prefix4(net::IPv4Address(c_v4a.u32(row)), c_v4l.u8(row));
        rec.v6_64 = net::Prefix6(
            net::IPv6Address(c_v6hi.u64(row), c_v6lo.u64(row)),
            c_v6l.u8(row));
        rec.asn4 = c_as4.u32(row);
        rec.asn6 = c_as6.u32(row);
        if (rec.asn6 != cached_asn) {
          cached_asn = rec.asn6;
          target = log_for(cached_asn);
        }
        dataset[target].records.push_back(rec);
      }
    }
  } else {
    // Slow path: per-row classification with the shared reject table —
    // identical ordering to the CSV reader (range check, then address
    // plausibility, then adjacent-duplicate).
    bool have_prev = false;
    cdn::AssociationRecord prev{};
    for (std::uint64_t g = 0; g < batch.groups && !ledger.tripped(); ++g) {
      const bgp::Asn group_asn = gasn.value().u32(g);
      log_for(group_asn);
      const std::uint64_t n = gcnt.value().u64(g);
      for (std::uint64_t k = 0; k < n; ++k, ++row) {
        ledger.count_unit();
        ledger.count_data();
        const std::uint32_t d = c_day.u32(row);
        const std::uint8_t l4 = c_v4l.u8(row);
        const std::uint8_t l6 = c_v6l.u8(row);
        auto row_text = [&] {
          return assoc_row_text(d, c_v4a.u32(row), l4, c_v6hi.u64(row),
                                c_v6lo.u64(row), l6);
        };
        if (d > options.max_day) {
          ledger.reject(RejectReason::kOutOfRange, row_text(), row + 1);
          if (ledger.tripped()) break;
          continue;
        }
        if (l4 > 32 || l6 > 128) {
          ledger.reject(RejectReason::kBadAddress, row_text(), row + 1);
          if (ledger.tripped()) break;
          continue;
        }
        cdn::AssociationRecord rec;
        rec.day = d;
        rec.v4_24 = net::Prefix4(net::IPv4Address(c_v4a.u32(row)), l4);
        rec.v6_64 = net::Prefix6(
            net::IPv6Address(c_v6hi.u64(row), c_v6lo.u64(row)), l6);
        rec.asn4 = c_as4.u32(row);
        rec.asn6 = c_as6.u32(row);
        if (options.assoc_dedup_adjacent) {
          if (have_prev && prev.day == rec.day && prev.v4_24 == rec.v4_24 &&
              prev.v6_64 == rec.v6_64 && prev.asn4 == rec.asn4 &&
              prev.asn6 == rec.asn6) {
            ledger.reject(RejectReason::kDuplicate, row_text(), row + 1);
            if (ledger.tripped()) break;
            continue;
          }
          prev = rec;
          have_prev = true;
        }
        dataset[log_for(rec.asn6)].records.push_back(rec);
        ledger.accept();
      }
    }
  }

  if (stats) stats->merge(ledger.stats());
  if (Status st = ledger.finish(); !st.ok())
    return st.with_context("load assoc columnar batch");

  // Same invariant as the echo decode: writer output is already day-sorted,
  // so the common case is one linear is_sorted scan instead of ~log(n)
  // merge passes over 56-byte records.
  for (auto& log : dataset) {
    auto by_day = [](const cdn::AssociationRecord& a,
                     const cdn::AssociationRecord& b) {
      return a.day < b.day;
    };
    if (!std::is_sorted(log.records.begin(), log.records.end(), by_day))
      std::stable_sort(log.records.begin(), log.records.end(), by_day);
  }
  return dataset;
}

// ------------------------------------------------------------------- mmap

namespace {

/// Read-only bytes of one file: mmap'd on POSIX (falling back to a plain
/// read when mmap is unavailable or fails), read into memory elsewhere.
class MappedBytes {
 public:
  MappedBytes() = default;
  MappedBytes(const MappedBytes&) = delete;
  MappedBytes& operator=(const MappedBytes&) = delete;
  MappedBytes(MappedBytes&& o) noexcept { swap(o); }
  MappedBytes& operator=(MappedBytes&& o) noexcept {
    swap(o);
    return *this;
  }
  ~MappedBytes() {
#ifdef __unix__
    if (map_ != nullptr && map_ != MAP_FAILED) ::munmap(map_, map_len_);
#endif
  }

  std::string_view view() const {
#ifdef __unix__
    if (map_ != nullptr && map_ != MAP_FAILED)
      return {static_cast<const char*>(map_), len_};
#endif
    return fallback_;
  }

  static Expected<MappedBytes> open(const std::string& path) {
    MappedBytes out;
#ifdef __unix__
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        out.len_ = std::size_t(st.st_size);
        out.map_len_ = out.len_;
        out.map_ = ::mmap(nullptr, out.map_len_, PROT_READ, MAP_PRIVATE, fd,
                          0);
      }
      ::close(fd);
      if (out.map_ != nullptr && out.map_ != MAP_FAILED) return out;
      out.map_ = nullptr;
      if (out.len_ == 0) return out;  // empty file: empty view is correct
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
      return Status(StatusCode::kNotFound, "cannot open dataset: " + path);
    out.fallback_.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    if (in.bad())
      return Status(StatusCode::kInternal, "read failed: " + path);
    return out;
  }

 private:
  void swap(MappedBytes& o) {
    std::swap(map_, o.map_);
    std::swap(map_len_, o.map_len_);
    std::swap(len_, o.len_);
    std::swap(fallback_, o.fallback_);
  }

  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::size_t len_ = 0;
  std::string fallback_;
};

}  // namespace

Expected<std::vector<atlas::ProbeSeries>> read_echo_columnar(
    const std::string& path, const ReaderOptions& options,
    IngestStats* stats) {
  auto mapped = MappedBytes::open(path);
  if (!mapped.ok()) return mapped.status();
  return decode_echo_columnar(mapped.value().view(), options, stats);
}

Expected<std::vector<cdn::AssociationLog>> read_assoc_columnar(
    const std::string& path, const ReaderOptions& options,
    IngestStats* stats) {
  auto mapped = MappedBytes::open(path);
  if (!mapped.ok()) return mapped.status();
  return decode_assoc_columnar(mapped.value().view(), options, stats);
}

// --------------------------------------------------------------- dispatch

Expected<std::vector<atlas::ProbeSeries>> load_echo_file(
    const std::string& path, const ReaderOptions& options,
    IngestStats* stats) {
  ReaderOptions ropts = options;
  ropts.source_label = path;
  if (is_columnar_path(path)) return read_echo_columnar(path, ropts, stats);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    return Status(StatusCode::kNotFound, "cannot open dataset: " + path);
  return read_echo_dataset(in, ropts, stats);
}

Expected<std::vector<cdn::AssociationLog>> load_assoc_file(
    const std::string& path, const ReaderOptions& options,
    IngestStats* stats) {
  ReaderOptions ropts = options;
  ropts.source_label = path;
  if (is_columnar_path(path)) return read_assoc_columnar(path, ropts, stats);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    return Status(StatusCode::kNotFound, "cannot open dataset: " + path);
  return read_assoc_dataset(in, ropts, stats);
}

}  // namespace dynamips::io
