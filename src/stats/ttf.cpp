#include "stats/ttf.h"

namespace dynamips::stats {

namespace {

struct Mark {
  std::uint64_t hours;
  const char* label;
};

// The tick marks of Fig. 1's x-axis.
constexpr Mark kMarks[] = {
    {1, "1h"},      {6, "6h"},      {12, "12h"},     {24, "1d"},
    {72, "3d"},     {168, "1w"},    {336, "2w"},     {730, "1m"},
    {2190, "3m"},   {4380, "6m"},   {8760, "1y"},    {35040, "4y"},
};

}  // namespace

std::vector<std::uint64_t> fig1_thresholds() {
  std::vector<std::uint64_t> out;
  out.reserve(std::size(kMarks));
  for (const auto& m : kMarks) out.push_back(m.hours);
  return out;
}

const char* duration_label(std::uint64_t hours) {
  for (const auto& m : kMarks)
    if (m.hours == hours) return m.label;
  return "?";
}

}  // namespace dynamips::stats
