#include "stats/ttf.h"

#include "io/checkpoint.h"

namespace dynamips::stats {

namespace {

struct Mark {
  std::uint64_t hours;
  const char* label;
};

// The tick marks of Fig. 1's x-axis.
constexpr Mark kMarks[] = {
    {1, "1h"},      {6, "6h"},      {12, "12h"},     {24, "1d"},
    {72, "3d"},     {168, "1w"},    {336, "2w"},     {730, "1m"},
    {2190, "3m"},   {4380, "6m"},   {8760, "1y"},    {35040, "4y"},
};

}  // namespace

std::vector<std::uint64_t> fig1_thresholds() {
  std::vector<std::uint64_t> out;
  out.reserve(std::size(kMarks));
  for (const auto& m : kMarks) out.push_back(m.hours);
  return out;
}

const char* duration_label(std::uint64_t hours) {
  for (const auto& m : kMarks)
    if (m.hours == hours) return m.label;
  return "?";
}

void TotalTimeFraction::save(io::ckpt::Writer& w) const {
  w.u64(counts_.size());
  for (auto [hours, n] : counts_) {
    w.u64(hours);
    w.u64(n);
  }
  w.u64(total_hours_);
  w.u64(total_count_);
}

bool TotalTimeFraction::load(io::ckpt::Reader& r) {
  counts_.clear();
  total_hours_ = total_count_ = 0;
  std::uint64_t n = r.size();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    std::uint64_t hours = r.u64();
    counts_[hours] = r.u64();
  }
  total_hours_ = r.u64();
  total_count_ = r.u64();
  return r.ok();
}

}  // namespace dynamips::stats
