// flatmap.h — a sorted-vector map with std::map's in-order iteration.
//
// The per-AS accumulators in core/ are keyed by small, mostly-static key
// sets (a few hundred ASNs) but are touched once per record. std::map pays
// a node allocation per key and chases pointers on every lookup; FlatMap
// stores the pairs contiguously and binary-searches them. Iteration visits
// keys in strictly increasing order — exactly like std::map — so CSV/JSON
// emission, checkpoint serialization, and the ordered shard reduction all
// produce byte-identical output when an analyzer swaps its map type.
//
// Deliberately a subset of std::map's interface (the parts the analyzers
// and their consumers use): operator[], at, find, count, contains,
// try_emplace, lower_bound, erase, clear, size, ordered iteration, and
// equality. Insertion is O(n) — fine for accumulator maps whose key set
// stops growing after the first few records.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dynamips::stats {

template <class K, class V, class Compare = std::less<K>>
class FlatMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;

  iterator begin() { return items_.begin(); }
  iterator end() { return items_.end(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  iterator lower_bound(const K& key) {
    return std::lower_bound(items_.begin(), items_.end(), key, KeyLess{});
  }
  const_iterator lower_bound(const K& key) const {
    return std::lower_bound(items_.begin(), items_.end(), key, KeyLess{});
  }

  iterator find(const K& key) {
    iterator it = lower_bound(key);
    return it != end() && !Compare{}(key, it->first) ? it : end();
  }
  const_iterator find(const K& key) const {
    const_iterator it = lower_bound(key);
    return it != end() && !Compare{}(key, it->first) ? it : end();
  }

  std::size_t count(const K& key) const { return find(key) != end() ? 1 : 0; }
  bool contains(const K& key) const { return find(key) != end(); }

  V& at(const K& key) {
    iterator it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }
  const V& at(const K& key) const {
    const_iterator it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }

  V& operator[](const K& key) {
    iterator it = lower_bound(key);
    if (it == end() || Compare{}(key, it->first))
      it = items_.emplace(it, key, V{});
    return it->second;
  }

  /// Insert {key, V(args...)} unless the key exists (std::map semantics:
  /// args are not evaluated into a V on the existing-key path).
  template <class... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    iterator it = lower_bound(key);
    if (it != end() && !Compare{}(key, it->first)) return {it, false};
    it = items_.emplace(it, std::piecewise_construct,
                        std::forward_as_tuple(key),
                        std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  iterator erase(const_iterator it) { return items_.erase(it); }
  std::size_t erase(const K& key) {
    iterator it = find(key);
    if (it == end()) return 0;
    items_.erase(it);
    return 1;
  }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.items_ == b.items_;
  }

 private:
  struct KeyLess {
    bool operator()(const value_type& a, const K& b) const {
      return Compare{}(a.first, b);
    }
  };

  std::vector<value_type> items_;
};

}  // namespace dynamips::stats
