// extsort.h — bounded-memory stable external merge sort.
//
// CdnAnalyzer::add_log sorts each log's tuples to group them by /64; at
// paper scale (§4: 32.7 B association tuples) a single dense log can exceed
// RAM, which is ROADMAP item 3's out-of-core requirement. ExternalSorter
// keeps the classic external-merge contract: push elements until done, then
// drain them in sorted order. While the buffered bytes stay within the
// budget everything is one in-memory stable_sort; past the budget, sorted
// runs spill to temp files as raw little-endian-agnostic memory images
// (the files never leave the machine or the process generation, so native
// layout is fine) and drain() k-way-merges them back.
//
// Determinism: runs are sorted with std::stable_sort and the merge breaks
// comparison ties toward the earlier run, so the drained order equals one
// std::stable_sort over the entire pushed sequence — byte-identical
// downstream results whether the budget was tiny, exact-fit, or never hit.
// That equivalence is what lets --spill-mb stay out of the config
// fingerprint: it bounds the working set, never the answer.
//
// Failure model: spill I/O errors throw std::runtime_error. add_log runs
// inside ShardExecutor::try_dispatch, which captures the exception into a
// kInternal Status — the same path every other worker failure takes. Temp
// files are unlinked as runs are consumed and again in the destructor;
// a killed process leaves only files in its private spill directory,
// which a resumed run never reads (it re-sorts from the checkpoint).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <queue>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

namespace dynamips::stats {

template <typename T, typename Less>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<T>,
                "spilled elements are raw memory images");

 public:
  struct Options {
    /// Buffered-element budget in bytes; 0 means unbounded (never spills).
    std::uint64_t budget_bytes = 0;
    /// Spill directory; empty uses std::filesystem::temp_directory_path().
    std::string spill_dir;
  };

  explicit ExternalSorter(Options options, Less less = Less())
      : options_(std::move(options)), less_(std::move(less)) {
    if (options_.budget_bytes != 0) {
      capacity_ = options_.budget_bytes / sizeof(T);
      if (capacity_ == 0) capacity_ = 1;
    }
  }

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  ~ExternalSorter() {
    std::error_code ec;
    for (const auto& path : runs_) std::filesystem::remove(path, ec);
  }

  void push(const T& value) {
    if (capacity_ != 0 && buffer_.size() >= capacity_) spill_run();
    buffer_.push_back(value);
    ++size_;
  }

  std::uint64_t size() const { return size_; }
  /// Cumulative runs spilled to disk (0 = the sort stayed in memory).
  /// Survives drain() — callers read the counters after consuming the
  /// sorter to report whether the out-of-core path actually ran.
  std::uint64_t spilled_runs() const { return spilled_runs_; }
  std::uint64_t spilled_bytes() const { return spilled_bytes_; }

  /// Emit every pushed element in stable sorted order, consuming the
  /// sorter. Equivalent to std::stable_sort over the pushed sequence.
  template <typename Fn>
  void drain(Fn&& fn) {
    if (runs_.empty()) {
      std::stable_sort(buffer_.begin(), buffer_.end(), less_);
      for (const T& v : buffer_) fn(v);
      buffer_.clear();
      return;
    }
    if (!buffer_.empty()) spill_run();
    merge_runs(fn);
  }

 private:
  void spill_run() {
    std::stable_sort(buffer_.begin(), buffer_.end(), less_);
    const std::filesystem::path path = run_path(runs_.size());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
      throw std::runtime_error("extsort: cannot create spill run: " +
                               path.string());
    out.write(reinterpret_cast<const char*>(buffer_.data()),
              std::streamsize(buffer_.size() * sizeof(T)));
    out.flush();
    if (!out)
      throw std::runtime_error("extsort: spill run write failed: " +
                               path.string());
    spilled_bytes_ += buffer_.size() * sizeof(T);
    ++spilled_runs_;
    runs_.push_back(path);
    buffer_.clear();
  }

  std::filesystem::path run_path(std::size_t index) const {
    std::filesystem::path dir = options_.spill_dir.empty()
                                    ? std::filesystem::temp_directory_path()
                                    : std::filesystem::path(options_.spill_dir);
#ifdef __unix__
    const unsigned long pid = static_cast<unsigned long>(::getpid());
#else
    const unsigned long pid = 0;
#endif
    char name[96];
    std::snprintf(name, sizeof name, "extsort-%lu-%llx-%zu.run", pid,
                  static_cast<unsigned long long>(
                      reinterpret_cast<std::uintptr_t>(this)),
                  index);
    return dir / name;
  }

  /// One spilled run being replayed: a bounded block of decoded elements
  /// plus the stream it refills from.
  struct RunCursor {
    std::ifstream in;
    std::vector<T> block;
    std::size_t pos = 0;
    bool exhausted = false;

    bool refill(std::size_t block_elems, const std::string& path) {
      block.resize(block_elems);
      in.read(reinterpret_cast<char*>(block.data()),
              std::streamsize(block_elems * sizeof(T)));
      const std::streamsize got = in.gcount();
      if (in.bad() || got % std::streamsize(sizeof(T)) != 0)
        throw std::runtime_error("extsort: spill run read failed: " + path);
      block.resize(std::size_t(got) / sizeof(T));
      pos = 0;
      exhausted = block.empty();
      return !exhausted;
    }
  };

  template <typename Fn>
  void merge_runs(Fn&& fn) {
    const std::size_t n = runs_.size();
    // Split the memory budget across the run readers so the merge obeys
    // the same bound the buffering did.
    std::size_t block_elems = capacity_ / (n + 1);
    if (block_elems == 0) block_elems = 1;

    std::vector<RunCursor> cursors(n);
    for (std::size_t i = 0; i < n; ++i) {
      cursors[i].in.open(runs_[i], std::ios::binary);
      if (!cursors[i].in.is_open())
        throw std::runtime_error("extsort: cannot reopen spill run: " +
                                 runs_[i].string());
      cursors[i].refill(block_elems, runs_[i].string());
    }

    // Min-heap of run indices ordered by (head element, run index); the
    // run-index tie-break is what makes the merge globally stable.
    auto heap_after = [&](std::size_t a, std::size_t b) {
      const T& ha = cursors[a].block[cursors[a].pos];
      const T& hb = cursors[b].block[cursors[b].pos];
      if (less_(hb, ha)) return true;
      if (less_(ha, hb)) return false;
      return b < a;
    };
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        decltype(heap_after)>
        heap(heap_after);
    for (std::size_t i = 0; i < n; ++i)
      if (!cursors[i].exhausted) heap.push(i);

    while (!heap.empty()) {
      const std::size_t i = heap.top();
      heap.pop();
      RunCursor& c = cursors[i];
      fn(c.block[c.pos]);
      if (++c.pos == c.block.size() &&
          !c.refill(block_elems, runs_[i].string())) {
        c.in.close();
        std::error_code ec;
        std::filesystem::remove(runs_[i], ec);
        continue;
      }
      heap.push(i);
    }
    runs_.clear();
  }

  Options options_;
  Less less_;
  std::size_t capacity_ = 0;  ///< buffered elements; 0 = unbounded
  std::vector<T> buffer_;
  std::vector<std::filesystem::path> runs_;
  std::uint64_t size_ = 0;
  std::uint64_t spilled_runs_ = 0;
  std::uint64_t spilled_bytes_ = 0;
};

}  // namespace dynamips::stats
