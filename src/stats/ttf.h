// ttf.h — the paper's "total time fraction" duration metric (§3.2.1, Eq. 1).
//
// A naive PMF over assignment durations overrepresents hosts whose addresses
// change often (they contribute many short samples). The total time fraction
// weights each duration by its length:
//
//     f_p(d) = n(d) * d / Σ(D)
//
// which equals the probability that a CPE observed at a random instant is in
// an assignment of duration d. The cumulative curve of f_p is what Fig. 1
// plots.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace dynamips::io::ckpt {
class Writer;
class Reader;
}  // namespace dynamips::io::ckpt

namespace dynamips::stats {

/// Accumulates assignment durations (in hours, the Atlas measurement
/// granularity) and produces both the naive PMF and the total-time-fraction
/// distribution.
class TotalTimeFraction {
 public:
  /// Record `count` occurrences of an assignment lasting `hours`.
  void add(std::uint64_t hours, std::uint64_t count = 1) {
    if (hours == 0 || count == 0) return;
    counts_[hours] += count;
    total_hours_ += hours * count;
    total_count_ += count;
  }

  /// Merge another accumulator (e.g. per-probe into per-AS).
  void merge(const TotalTimeFraction& other) {
    for (auto [d, n] : other.counts_) counts_[d] += n;
    total_hours_ += other.total_hours_;
    total_count_ += other.total_count_;
  }

  std::uint64_t total_hours() const { return total_hours_; }
  std::uint64_t total_count() const { return total_count_; }
  bool empty() const { return total_count_ == 0; }

  /// Total time fraction f(d) for a single duration value.
  double fraction(std::uint64_t hours) const {
    if (total_hours_ == 0) return 0.0;
    auto it = counts_.find(hours);
    if (it == counts_.end()) return 0.0;
    return double(it->second) * double(hours) / double(total_hours_);
  }

  /// Cumulative total time fraction at each threshold (fraction of observed
  /// time spent in assignments of duration <= t).
  std::vector<double> cumulative(std::span<const std::uint64_t> thresholds)
      const {
    std::vector<double> out;
    out.reserve(thresholds.size());
    double acc = 0;
    auto it = counts_.begin();
    for (std::uint64_t t : thresholds) {
      while (it != counts_.end() && it->first <= t) {
        acc += double(it->second) * double(it->first);
        ++it;
      }
      out.push_back(total_hours_ ? acc / double(total_hours_) : 0.0);
    }
    return out;
  }

  /// Naive cumulative PMF at each threshold (fraction of *samples* with
  /// duration <= t) — kept for the ablation comparing the two metrics.
  std::vector<double> cumulative_naive(
      std::span<const std::uint64_t> thresholds) const {
    std::vector<double> out;
    out.reserve(thresholds.size());
    double acc = 0;
    auto it = counts_.begin();
    for (std::uint64_t t : thresholds) {
      while (it != counts_.end() && it->first <= t) {
        acc += double(it->second);
        ++it;
      }
      out.push_back(total_count_ ? acc / double(total_count_) : 0.0);
    }
    return out;
  }

  /// The underlying duration histogram (hours -> occurrence count).
  const std::map<std::uint64_t, std::uint64_t>& counts() const {
    return counts_;
  }

  /// Checkpoint serialization (io/checkpoint.h): save() emits the exact
  /// accumulator state, load() replaces it. load() returns false on a
  /// malformed blob and leaves the accumulator empty.
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_hours_ = 0;
  std::uint64_t total_count_ = 0;
};

/// The x-axis used by Fig. 1: thresholds from 1 hour to 4 years, in hours.
std::vector<std::uint64_t> fig1_thresholds();

/// Human label for one of the fig1 thresholds ("1h", "3d", "2w", ...).
const char* duration_label(std::uint64_t hours);

}  // namespace dynamips::stats
