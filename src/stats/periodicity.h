// periodicity.h — detection of periodic address renumbering (§3.2).
//
// The paper reports "well-defined modes" in the duration distributions —
// e.g. 24 h for DTAG, 36 h for Proximus, 1 week for Orange, 2 weeks for BT —
// and counts 35 networks with consistent periodic renumbering. We formalise
// the detection: a network renumbers with period P when a large share of its
// total observed assignment time sits in durations within a small tolerance
// of P (periodic leases yield durations at exact multiples of the lease).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "stats/ttf.h"

namespace dynamips::stats {

/// One detected renumbering period.
struct PeriodicMode {
  std::uint64_t period_hours = 0;  ///< the detected period (e.g. 24)
  double time_fraction = 0;        ///< share of total time at this mode
};

struct PeriodicityOptions {
  /// Relative tolerance around a candidate period (hourly sampling plus
  /// renewal jitter smears the mode slightly).
  double tolerance = 0.10;
  /// Minimum share of total assignment time the mode must capture to count
  /// as "consistent periodic renumbering".
  double min_fraction = 0.25;
};

/// Detector over a duration accumulator.
class PeriodicityDetector {
 public:
  explicit PeriodicityDetector(PeriodicityOptions opts = {}) : opts_(opts) {}

  /// Mass of total time within tolerance of `period_hours`.
  double mass_near(const TotalTimeFraction& ttf,
                   std::uint64_t period_hours) const;

  /// Check one candidate period; returns the mode when it qualifies.
  std::optional<PeriodicMode> check(const TotalTimeFraction& ttf,
                                    std::uint64_t period_hours) const;

  /// Scan the candidate periods the paper reports (12 h, 24 h, 36 h, 48 h,
  /// 1 w, 2 w) plus any extras; returns qualifying modes sorted by mass,
  /// strongest first. Overlapping candidates are deduplicated in favour of
  /// the stronger one.
  std::vector<PeriodicMode> detect(
      const TotalTimeFraction& ttf,
      const std::vector<std::uint64_t>& extra_candidates = {}) const;

  /// The strongest qualifying period, if any — the headline "this ISP
  /// renumbers every N hours" statement.
  std::optional<PeriodicMode> dominant(const TotalTimeFraction& ttf) const;

 private:
  PeriodicityOptions opts_;
};

/// Mergeable tally of how many networks exhibit consistent periodic
/// renumbering, bucketed by detected period — the paper's "35 networks"
/// count (§3.2). Shards tally their ASes independently and merge.
class PeriodicNetworkCounter {
 public:
  explicit PeriodicNetworkCounter(PeriodicityOptions opts = {})
      : detector_(opts) {}

  /// Tally one network's duration accumulator.
  void add(const TotalTimeFraction& ttf) {
    ++networks_;
    if (auto mode = detector_.dominant(ttf)) {
      ++periodic_;
      ++by_period_[mode->period_hours];
    }
  }

  /// Absorb another counter (shard reduction); sums are order-independent.
  void merge(const PeriodicNetworkCounter& other) {
    networks_ += other.networks_;
    periodic_ += other.periodic_;
    for (auto [p, n] : other.by_period_) by_period_[p] += n;
  }

  std::uint64_t networks() const { return networks_; }
  std::uint64_t periodic_networks() const { return periodic_; }
  /// Period (hours) -> number of networks dominated by that period.
  const std::map<std::uint64_t, std::uint64_t>& by_period() const {
    return by_period_;
  }

 private:
  PeriodicityDetector detector_;
  std::uint64_t networks_ = 0;
  std::uint64_t periodic_ = 0;
  std::map<std::uint64_t, std::uint64_t> by_period_;
};

}  // namespace dynamips::stats
