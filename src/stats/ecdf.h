// ecdf.h — empirical cumulative distribution function.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace dynamips::stats {

/// Accumulates samples, then answers CDF / quantile queries. Used for the
/// CDN association-duration curves (Fig. 2) and unique-prefix CDFs (Fig. 8).
///
/// Sorting is eager, never lazy: merge() and finalize() sort in place, and
/// the const accessors never mutate (an earlier revision sorted `mutable`
/// state from const accessors, which raced when a finalized ECDF was read
/// from several threads). Querying an unfinalized accumulator still returns
/// exact answers via non-mutating fallbacks; call finalize() once after the
/// last add() to get the O(log n) sorted paths.
///
/// Re-finalizable: the accumulator tracks a sorted-prefix watermark, so a
/// finalize() after more add()s only sorts the unsorted tail and merges it
/// into the already-sorted prefix (O(tail log tail + n) instead of a full
/// re-sort). Streaming snapshots alternate add batches and finalize calls
/// without ever consuming the accumulator.
class Ecdf {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_n(double x, std::size_t n) {
    samples_.insert(samples_.end(), n, x);
  }

  /// Absorb another accumulator's samples (shard reduction). Queries are
  /// order-independent, so merging in any order yields the same CDF.
  /// Sorts eagerly: a merged ECDF is always safe for concurrent reads.
  void merge(const Ecdf& other) {
    if (other.samples_.empty()) return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    finalize();
  }

  /// Sort the sample buffer; afterwards all accessors take the fast sorted
  /// paths and concurrent const reads share immutable state. Incremental:
  /// sorts only the tail added since the previous finalize, then merges it
  /// with the sorted prefix in place.
  void finalize() {
    if (sorted_prefix_ == samples_.size()) return;
    auto mid = samples_.begin() + std::ptrdiff_t(sorted_prefix_);
    std::sort(mid, samples_.end());
    std::inplace_merge(samples_.begin(), mid, samples_.end());
    sorted_prefix_ = samples_.size();
  }
  bool finalized() const { return sorted_prefix_ == samples_.size(); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x.
  double at(double x) const {
    if (samples_.empty()) return 0.0;
    if (!finalized()) {
      // Unfinalized: count linearly instead of sorting under the caller.
      std::size_t c = 0;
      for (double s : samples_) c += (s <= x);
      return double(c) / double(samples_.size());
    }
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return double(it - samples_.begin()) / double(samples_.size());
  }

  /// Value below which a fraction q of samples fall (inverse CDF).
  double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    if (!finalized()) {
      // Unfinalized: sort a local copy rather than mutating shared state.
      std::vector<double> copy(samples_);
      std::sort(copy.begin(), copy.end());
      return quantile_of(copy, q);
    }
    return quantile_of(samples_, q);
  }

  /// Evaluate the CDF at each threshold; handy for printing curves.
  std::vector<double> curve(std::span<const double> thresholds) const {
    std::vector<double> out;
    out.reserve(thresholds.size());
    for (double t : thresholds) out.push_back(at(t));
    return out;
  }

  /// The sample buffer: sorted up to the watermark left by the last
  /// finalize(), insertion-ordered past it.
  const std::vector<double>& samples() const { return samples_; }

 private:
  static double quantile_of(const std::vector<double>& sorted, double q) {
    if (q <= 0) return sorted.front();
    if (q >= 1) return sorted.back();
    double pos = q * double(sorted.size() - 1);
    std::size_t i = std::size_t(pos);
    double frac = pos - double(i);
    if (i + 1 >= sorted.size()) return sorted.back();
    return sorted[i] * (1 - frac) + sorted[i + 1] * frac;
  }

  std::vector<double> samples_;
  std::size_t sorted_prefix_ = 0;
};

}  // namespace dynamips::stats
