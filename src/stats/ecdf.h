// ecdf.h — empirical cumulative distribution function.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace dynamips::stats {

/// Accumulates samples, then answers CDF / quantile queries. Used for the
/// CDN association-duration curves (Fig. 2) and unique-prefix CDFs (Fig. 8).
class Ecdf {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add_n(double x, std::size_t n) {
    samples_.insert(samples_.end(), n, x);
    sorted_ = false;
  }

  /// Absorb another accumulator's samples (shard reduction). Queries are
  /// order-independent, so merging in any order yields the same CDF.
  void merge(const Ecdf& other) {
    if (other.samples_.empty()) return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x.
  double at(double x) const {
    ensure_sorted();
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return samples_.empty()
               ? 0.0
               : double(it - samples_.begin()) / double(samples_.size());
  }

  /// Value below which a fraction q of samples fall (inverse CDF).
  double quantile(double q) const {
    ensure_sorted();
    if (samples_.empty()) return 0.0;
    if (q <= 0) return samples_.front();
    if (q >= 1) return samples_.back();
    double pos = q * double(samples_.size() - 1);
    std::size_t i = std::size_t(pos);
    double frac = pos - double(i);
    if (i + 1 >= samples_.size()) return samples_.back();
    return samples_[i] * (1 - frac) + samples_[i + 1] * frac;
  }

  /// Evaluate the CDF at each threshold; handy for printing curves.
  std::vector<double> curve(std::span<const double> thresholds) const {
    std::vector<double> out;
    out.reserve(thresholds.size());
    for (double t : thresholds) out.push_back(at(t));
    return out;
  }

  const std::vector<double>& samples() const {
    ensure_sorted();
    return samples_;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace dynamips::stats
