// ecdf.h — empirical cumulative distribution function.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace dynamips::stats {

/// Accumulates samples, then answers CDF / quantile queries. Used for the
/// CDN association-duration curves (Fig. 2) and unique-prefix CDFs (Fig. 8).
///
/// Sorting is eager, never lazy: merge() and finalize() sort in place, and
/// the const accessors never mutate (an earlier revision sorted `mutable`
/// state from const accessors, which raced when a finalized ECDF was read
/// from several threads). Querying an unfinalized accumulator still returns
/// exact answers via non-mutating fallbacks; call finalize() once after the
/// last add() to get the O(log n) sorted paths.
class Ecdf {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = samples_.size() <= 1;
  }
  void add_n(double x, std::size_t n) {
    samples_.insert(samples_.end(), n, x);
    sorted_ = samples_.size() <= n;
  }

  /// Absorb another accumulator's samples (shard reduction). Queries are
  /// order-independent, so merging in any order yields the same CDF.
  /// Sorts eagerly: a merged ECDF is always safe for concurrent reads.
  void merge(const Ecdf& other) {
    if (other.samples_.empty()) return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
    finalize();
  }

  /// Sort the sample buffer; afterwards all accessors take the fast sorted
  /// paths and concurrent const reads share immutable state.
  void finalize() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  bool finalized() const { return sorted_; }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x.
  double at(double x) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      // Unfinalized: count linearly instead of sorting under the caller.
      std::size_t c = 0;
      for (double s : samples_) c += (s <= x);
      return double(c) / double(samples_.size());
    }
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return double(it - samples_.begin()) / double(samples_.size());
  }

  /// Value below which a fraction q of samples fall (inverse CDF).
  double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      // Unfinalized: sort a local copy rather than mutating shared state.
      std::vector<double> copy(samples_);
      std::sort(copy.begin(), copy.end());
      return quantile_of(copy, q);
    }
    return quantile_of(samples_, q);
  }

  /// Evaluate the CDF at each threshold; handy for printing curves.
  std::vector<double> curve(std::span<const double> thresholds) const {
    std::vector<double> out;
    out.reserve(thresholds.size());
    for (double t : thresholds) out.push_back(at(t));
    return out;
  }

  /// The sample buffer: insertion-ordered before finalize(), sorted after.
  const std::vector<double>& samples() const { return samples_; }

 private:
  static double quantile_of(const std::vector<double>& sorted, double q) {
    if (q <= 0) return sorted.front();
    if (q >= 1) return sorted.back();
    double pos = q * double(sorted.size() - 1);
    std::size_t i = std::size_t(pos);
    double frac = pos - double(i);
    if (i + 1 >= sorted.size()) return sorted.back();
    return sorted[i] * (1 - frac) + sorted[i + 1] * frac;
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace dynamips::stats
