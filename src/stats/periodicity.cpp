#include "stats/periodicity.h"

#include <algorithm>
#include <cmath>

namespace dynamips::stats {

namespace {

// Candidate periods from the paper's observations: 12 h (ANTEL), 24 h
// (German ISPs), 36 h (Proximus), 48 h (Global Village), 1 week (Orange),
// 2 weeks (BT).
constexpr std::uint64_t kDefaultCandidates[] = {12, 24, 36, 48, 168, 336};

}  // namespace

double PeriodicityDetector::mass_near(const TotalTimeFraction& ttf,
                                      std::uint64_t period_hours) const {
  if (ttf.total_hours() == 0) return 0.0;
  auto lo = std::uint64_t(std::floor(double(period_hours) *
                                     (1.0 - opts_.tolerance)));
  auto hi = std::uint64_t(std::ceil(double(period_hours) *
                                    (1.0 + opts_.tolerance)));
  double mass = 0;
  const auto& counts = ttf.counts();
  for (auto it = counts.lower_bound(lo);
       it != counts.end() && it->first <= hi; ++it)
    mass += double(it->second) * double(it->first);
  return mass / double(ttf.total_hours());
}

std::optional<PeriodicMode> PeriodicityDetector::check(
    const TotalTimeFraction& ttf, std::uint64_t period_hours) const {
  double m = mass_near(ttf, period_hours);
  if (m < opts_.min_fraction) return std::nullopt;
  return PeriodicMode{period_hours, m};
}

std::vector<PeriodicMode> PeriodicityDetector::detect(
    const TotalTimeFraction& ttf,
    const std::vector<std::uint64_t>& extra_candidates) const {
  std::vector<std::uint64_t> candidates(std::begin(kDefaultCandidates),
                                        std::end(kDefaultCandidates));
  candidates.insert(candidates.end(), extra_candidates.begin(),
                    extra_candidates.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<PeriodicMode> modes;
  for (auto p : candidates)
    if (auto m = check(ttf, p)) modes.push_back(*m);

  std::sort(modes.begin(), modes.end(),
            [](const PeriodicMode& a, const PeriodicMode& b) {
              return a.time_fraction > b.time_fraction;
            });

  // Drop weaker modes whose tolerance window overlaps a stronger one (24 h
  // and 36 h windows are disjoint at 10% tolerance, but callers may pass
  // denser candidate grids).
  std::vector<PeriodicMode> kept;
  for (const auto& m : modes) {
    bool overlaps = false;
    for (const auto& k : kept) {
      double lo_m = double(m.period_hours) * (1.0 - opts_.tolerance);
      double hi_m = double(m.period_hours) * (1.0 + opts_.tolerance);
      double lo_k = double(k.period_hours) * (1.0 - opts_.tolerance);
      double hi_k = double(k.period_hours) * (1.0 + opts_.tolerance);
      if (lo_m <= hi_k && lo_k <= hi_m) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) kept.push_back(m);
  }
  return kept;
}

std::optional<PeriodicMode> PeriodicityDetector::dominant(
    const TotalTimeFraction& ttf) const {
  auto modes = detect(ttf);
  if (modes.empty()) return std::nullopt;
  return modes.front();
}

}  // namespace dynamips::stats
