// summary.h — small numeric summary helpers shared by the analyses.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace dynamips::stats {

/// Arithmetic mean; 0 for an empty span.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / double(xs.size());
}

/// Linear-interpolated quantile of *sorted* data, q in [0,1].
inline double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  double pos = q * double(sorted.size() - 1);
  std::size_t i = std::size_t(pos);
  double frac = pos - double(i);
  if (i + 1 >= sorted.size()) return sorted.back();
  return sorted[i] * (1 - frac) + sorted[i + 1] * frac;
}

/// Quantile of unsorted data (copies and sorts).
inline double quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

inline double median(std::vector<double> xs) {
  return quantile(std::move(xs), 0.5);
}

/// Five-number box summary (Fig. 3 style): whiskers at p5/p95, box at the
/// inner quartiles, line at the median.
struct BoxStats {
  double p5 = 0, q1 = 0, median = 0, q3 = 0, p95 = 0;
  std::size_t n = 0;

  static BoxStats of(std::vector<double> xs) {
    BoxStats b;
    b.n = xs.size();
    if (xs.empty()) return b;
    std::sort(xs.begin(), xs.end());
    b.p5 = quantile_sorted(xs, 0.05);
    b.q1 = quantile_sorted(xs, 0.25);
    b.median = quantile_sorted(xs, 0.50);
    b.q3 = quantile_sorted(xs, 0.75);
    b.p95 = quantile_sorted(xs, 0.95);
    return b;
  }
};

}  // namespace dynamips::stats
