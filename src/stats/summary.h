// summary.h — small numeric summary helpers shared by the analyses.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace dynamips::stats {

/// Process-wide count of NaN samples dropped by the summary helpers.
/// NaN has no place in a strict weak ordering: sorting a NaN-bearing
/// vector is undefined behaviour and quantiles over it silently come out
/// NaN. The helpers filter NaN out instead and count every drop here, so
/// the pipeline can surface the count as a `stats.nan_dropped` metric
/// rather than lose data invisibly.
inline std::atomic<std::uint64_t>& nan_dropped_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline std::uint64_t nan_dropped() {
  return nan_dropped_counter().load(std::memory_order_relaxed);
}

/// Remove NaN entries in place (preserving order) and account for them in
/// nan_dropped(). Returns the number removed.
inline std::size_t drop_nan(std::vector<double>& xs) {
  auto keep = std::remove_if(xs.begin(), xs.end(),
                             [](double x) { return std::isnan(x); });
  std::size_t dropped = std::size_t(xs.end() - keep);
  if (dropped) {
    xs.erase(keep, xs.end());
    nan_dropped_counter().fetch_add(dropped, std::memory_order_relaxed);
  }
  return dropped;
}

/// Arithmetic mean; 0 for an empty span.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / double(xs.size());
}

/// Linear-interpolated quantile of *sorted* data, q in [0,1]. The data
/// must be NaN-free (quantile() and BoxStats::of filter before sorting).
inline double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  double pos = q * double(sorted.size() - 1);
  std::size_t i = std::size_t(pos);
  double frac = pos - double(i);
  if (i + 1 >= sorted.size()) return sorted.back();
  return sorted[i] * (1 - frac) + sorted[i + 1] * frac;
}

/// Quantile of unsorted data (copies, drops NaN, and sorts).
inline double quantile(std::vector<double> xs, double q) {
  drop_nan(xs);
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

inline double median(std::vector<double> xs) {
  return quantile(std::move(xs), 0.5);
}

/// Five-number box summary (Fig. 3 style): whiskers at p5/p95, box at the
/// inner quartiles, line at the median. NaN samples are dropped (and
/// counted in nan_dropped()) before sorting; n reflects the kept samples.
struct BoxStats {
  double p5 = 0, q1 = 0, median = 0, q3 = 0, p95 = 0;
  std::size_t n = 0;

  static BoxStats of(std::vector<double> xs) {
    BoxStats b;
    drop_nan(xs);
    b.n = xs.size();
    if (xs.empty()) return b;
    std::sort(xs.begin(), xs.end());
    b.p5 = quantile_sorted(xs, 0.05);
    b.q1 = quantile_sorted(xs, 0.25);
    b.median = quantile_sorted(xs, 0.50);
    b.q3 = quantile_sorted(xs, 0.75);
    b.p95 = quantile_sorted(xs, 0.95);
    return b;
  }
};

}  // namespace dynamips::stats
