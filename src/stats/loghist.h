// loghist.h — logarithmically binned histogram / density estimate.
//
// Fig. 4 plots the density of "IPv6 /64s associated per IPv4 /24" on a log
// x-axis from 10^0 to 10^6, both unweighted (each /24 counts once) and
// hit-weighted (each /24 counts by its degree, emphasising highly
// multiplexed blocks). This class produces those series.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dynamips::stats {

/// Histogram over log10-spaced bins covering [10^lo_exp, 10^hi_exp).
class LogHistogram {
 public:
  /// `bins_per_decade` controls resolution (Fig. 4 uses ~10).
  LogHistogram(double lo_exp, double hi_exp, int bins_per_decade)
      : lo_exp_(lo_exp),
        hi_exp_(hi_exp),
        per_decade_(bins_per_decade),
        counts_(std::size_t((hi_exp - lo_exp) * bins_per_decade) + 1, 0.0) {}

  /// Add a sample with the given weight. Values below the range clamp into
  /// the first bin; above the range, into the last.
  void add(double value, double weight = 1.0) {
    counts_[bin_of(value)] += weight;
    total_ += weight;
  }

  /// Absorb another histogram with identical binning (shard reduction).
  /// Precondition: same lo/hi exponents and bins-per-decade.
  void merge(const LogHistogram& other) {
    assert(counts_.size() == other.counts_.size() &&
           lo_exp_ == other.lo_exp_ && per_decade_ == other.per_decade_);
    for (std::size_t i = 0; i < counts_.size(); ++i)
      counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

  std::size_t bin_count() const { return counts_.size(); }
  double total_weight() const { return total_; }

  /// Geometric center of bin i.
  double bin_center(std::size_t i) const {
    double e = lo_exp_ + (double(i) + 0.5) / per_decade_;
    return std::pow(10.0, e);
  }

  /// Normalized density per bin (sums to 1 over all bins).
  std::vector<double> density() const {
    std::vector<double> out(counts_.size(), 0.0);
    if (total_ <= 0) return out;
    for (std::size_t i = 0; i < counts_.size(); ++i)
      out[i] = counts_[i] / total_;
    return out;
  }

  /// Bin index with the largest mass (the distribution's mode); used to
  /// check Fig. 4's peaks (≈256 for fixed, ≈80k for mobile).
  std::size_t mode_bin() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < counts_.size(); ++i)
      if (counts_[i] > counts_[best]) best = i;
    return best;
  }

  double mode_value() const { return bin_center(mode_bin()); }

 private:
  std::size_t bin_of(double value) const {
    if (value < 1e-300) return 0;
    double e = std::log10(value);
    double pos = (e - lo_exp_) * per_decade_;
    if (pos < 0) return 0;
    std::size_t i = std::size_t(pos);
    return i >= counts_.size() ? counts_.size() - 1 : i;
  }

  double lo_exp_, hi_exp_, per_decade_;
  std::vector<double> counts_;
  double total_ = 0;
};

}  // namespace dynamips::stats
