#include "simnet/pools.h"

#include <algorithm>
#include <cassert>

namespace dynamips::simnet {

using net::IPv4Address;
using net::Prefix4;
using net::Prefix6;
using net::Rng;
using net::U128;

Prefix6 random_subprefix(const Prefix6& parent, int child_len, Rng& rng) {
  assert(child_len >= parent.length() && child_len <= 128);
  int free_bits = child_len - parent.length();
  U128 bits = parent.address().bits();
  if (free_bits > 0) {
    // Random value in [0, 2^free_bits), placed between the two lengths.
    U128 r{rng.next_u64(), rng.next_u64()};
    r = r >> unsigned(128 - free_bits);
    bits = bits | (r << unsigned(128 - child_len));
  }
  return Prefix6{net::IPv6Address{bits}, child_len};
}

IPv4Address random_host(const Prefix4& block, Rng& rng) {
  int host_bits = 32 - block.length();
  if (host_bits <= 0) return block.address();
  std::uint32_t span = host_bits >= 32 ? ~0u : ((1u << host_bits) - 1);
  // Avoid network (.0) and broadcast (.255) style endpoints when possible.
  std::uint32_t host;
  if (span >= 3) {
    host = 1 + std::uint32_t(rng.uniform(span - 1));
  } else {
    host = std::uint32_t(rng.uniform(std::uint64_t(span) + 1));
  }
  return IPv4Address{block.address().value() | host};
}

V4AddressPlan::V4AddressPlan(std::vector<Prefix4> bgp_prefixes,
                             double p_same24, double p_same_bgp)
    : bgp_(std::move(bgp_prefixes)),
      p_same24_(p_same24),
      p_same_bgp_(p_same_bgp) {
  assert(!bgp_.empty());
  for ([[maybe_unused]] const auto& p : bgp_) assert(p.length() <= 24);
}

std::size_t V4AddressPlan::bgp_index_of(IPv4Address a) const {
  for (std::size_t i = 0; i < bgp_.size(); ++i)
    if (bgp_[i].contains(a)) return i;
  return 0;
}

IPv4Address V4AddressPlan::random_in_bgp(std::size_t idx, Rng& rng) const {
  const Prefix4& p = bgp_[idx];
  int slash24_bits = 24 - p.length();
  std::uint32_t n24 = slash24_bits >= 31 ? ~0u : (1u << slash24_bits);
  std::uint32_t block = std::uint32_t(rng.uniform(n24));
  Prefix4 b24{IPv4Address{p.address().value() | (block << 8)}, 24};
  return random_host(b24, rng);
}

IPv4Address V4AddressPlan::initial(Rng& rng) const {
  std::size_t idx = std::size_t(rng.uniform(bgp_.size()));
  return random_in_bgp(idx, rng);
}

IPv4Address V4AddressPlan::next(IPv4Address current, Rng& rng) const {
  if (rng.bernoulli(p_same24_)) {
    // Stay in the same /24, different host.
    Prefix4 b24 = net::slash24_of(current);
    for (int attempt = 0; attempt < 8; ++attempt) {
      IPv4Address a = random_host(b24, rng);
      if (a != current) return a;
    }
    // Single-host corner case: fall through to a full redraw.
  }
  std::size_t cur_idx = bgp_index_of(current);
  std::size_t idx = cur_idx;
  if (bgp_.size() > 1 && !rng.bernoulli(p_same_bgp_)) {
    // Move to a different BGP prefix.
    idx = std::size_t(rng.uniform(bgp_.size() - 1));
    if (idx >= cur_idx) ++idx;
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    IPv4Address a = random_in_bgp(idx, rng);
    if (a != current && net::slash24_of(a) != net::slash24_of(current))
      return a;
  }
  return random_in_bgp(idx, rng);
}

V6AddressPlan::V6AddressPlan(std::vector<Prefix6> bgp_prefixes, int pool_len,
                             double p_same_bgp, int pools_per_bgp)
    : bgp_(std::move(bgp_prefixes)),
      pool_len_(pool_len),
      p_same_bgp_(p_same_bgp) {
  assert(!bgp_.empty());
  universe_.resize(bgp_.size());
  for (std::size_t i = 0; i < bgp_.size(); ++i) {
    const Prefix6& ann = bgp_[i];
    assert(ann.length() <= pool_len_);
    // Deterministic per-announcement pool universe: the same ISP always
    // carves the same pools, independent of subscriber order or seed.
    Rng rng(ann.address().network64() * 0x9e3779b97f4a7c15ull +
            std::uint64_t(ann.length()) + std::uint64_t(pool_len_) * 131);
    int max_pools = 1;
    int free_bits = pool_len_ - ann.length();
    max_pools = free_bits >= 20 ? (1 << 20) : (1 << free_bits);
    int want = std::min(pools_per_bgp, max_pools);
    auto& pools = universe_[i];
    while (int(pools.size()) < want) {
      Prefix6 pool = random_subprefix(ann, pool_len_, rng);
      bool dup = false;
      for (const auto& existing : pools) dup |= existing == pool;
      if (!dup) pools.push_back(pool);
    }
  }
}

HomePools V6AddressPlan::assign_home_pools(int count, double secondary_weight,
                                           Rng& rng) const {
  HomePools home;
  // Primary pool: random pool in a random BGP prefix. Secondary pools:
  // mostly siblings in the same BGP prefix, with the last one placed in a
  // different BGP prefix when available (the rare cross-BGP destination).
  std::size_t primary_bgp = std::size_t(rng.uniform(bgp_.size()));
  for (int i = 0; i < count; ++i) {
    std::size_t bgp_idx = primary_bgp;
    if (i == count - 1 && count > 1 && bgp_.size() > 1) {
      bgp_idx = std::size_t(rng.uniform(bgp_.size() - 1));
      if (bgp_idx >= primary_bgp) ++bgp_idx;
    }
    const auto& pools = universe_[bgp_idx];
    for (int attempt = 0; attempt < 16; ++attempt) {
      const Prefix6& pool = pools[rng.uniform(pools.size())];
      bool dup = false;
      for (const auto& existing : home.pools) dup |= existing == pool;
      if (!dup) {
        home.pools.push_back(pool);
        break;
      }
    }
  }
  // Primary pool gets the bulk of the weight; the rest share
  // `secondary_weight`, matching Fig. 8's "most probes see a handful of
  // /40s, dominated by one".
  home.weights.assign(home.pools.size(), 0.0);
  if (home.pools.size() == 1) {
    home.weights[0] = 1.0;
  } else {
    home.weights[0] = 1.0 - secondary_weight;
    double rest = secondary_weight / double(home.pools.size() - 1);
    for (std::size_t i = 1; i < home.pools.size(); ++i)
      home.weights[i] = rest;
  }
  return home;
}

Prefix6 V6AddressPlan::draw_delegation(const HomePools& home, int deleg_len,
                                       const Prefix6& current,
                                       Rng& rng) const {
  assert(!home.pools.empty());
  // Decide whether this reassignment may cross BGP prefixes. When it must
  // not (the common case), restrict the pool choice to pools in the current
  // BGP prefix (or the primary's when there is no current assignment).
  std::size_t cur_bgp = 0;
  bool have_current = current.length() > 0;
  if (have_current) {
    for (std::size_t i = 0; i < bgp_.size(); ++i)
      if (bgp_[i].contains(current)) cur_bgp = i;
  } else {
    for (std::size_t i = 0; i < bgp_.size(); ++i)
      if (bgp_[i].contains(home.pools[0])) cur_bgp = i;
  }
  bool allow_cross = rng.bernoulli(1.0 - p_same_bgp_);

  std::vector<double> w = home.weights;
  for (std::size_t i = 0; i < home.pools.size(); ++i) {
    bool in_cur = bgp_[cur_bgp].contains(home.pools[i]);
    if (!allow_cross && !in_cur) w[i] = 0.0;
    if (allow_cross && in_cur) w[i] = 0.0;
  }
  double total = 0;
  for (double x : w) total += x;
  if (total <= 0) w = home.weights;  // fall back when the filter zeroed all

  const Prefix6& pool = home.pools[rng.weighted(w)];
  for (int attempt = 0; attempt < 16; ++attempt) {
    Prefix6 d = random_subprefix(pool, deleg_len, rng);
    if (!have_current || d != current) return d;
  }
  return random_subprefix(pool, deleg_len, rng);
}

}  // namespace dynamips::simnet
