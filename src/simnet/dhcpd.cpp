#include "simnet/dhcpd.h"

#include <algorithm>

namespace dynamips::simnet {

// ---------------------------------------------------------------------------
// Dhcp4Server
// ---------------------------------------------------------------------------

Lease4 Dhcp4Server::request(ClientId client, Hour now) {
  auto it = leases_.find(client);
  if (it != leases_.end()) {
    Lease4& lease = it->second;
    if (now < lease.expiry || config_.remember_expired) {
      // Active lease, or an expired binding the server still remembers:
      // re-issue the same address with fresh lifetimes.
      lease.issued = now;
      lease.expiry = now + config_.lease_time;
      return lease;
    }
    leases_.erase(it);
  }
  Lease4 lease;
  lease.addr = plan_.initial(rng_);
  lease.issued = now;
  lease.expiry = now + config_.lease_time;
  leases_[client] = lease;
  return lease;
}

std::optional<Lease4> Dhcp4Server::renew(ClientId client, Hour now) {
  auto it = leases_.find(client);
  if (it == leases_.end() || now >= it->second.expiry) return std::nullopt;
  it->second.issued = now;
  it->second.expiry = now + config_.lease_time;
  return it->second;
}

void Dhcp4Server::release(ClientId client) { leases_.erase(client); }

void Dhcp4Server::restart() { leases_.clear(); }

// ---------------------------------------------------------------------------
// Dhcp6PdServer
// ---------------------------------------------------------------------------

HomePools Dhcp6PdServer::home_for(ClientId client) {
  auto it = homes_.find(client);
  if (it != homes_.end()) return it->second;
  HomePools home = plan_.assign_home_pools(1, 0.0, rng_);
  homes_[client] = home;
  return home;
}

Lease6 Dhcp6PdServer::request(ClientId client, Hour now) {
  auto it = leases_.find(client);
  if (it != leases_.end()) {
    Lease6& lease = it->second;
    if (now < lease.expiry || config_.remember_expired) {
      lease.issued = now;
      lease.expiry = now + config_.lease_time;
      return lease;
    }
    leases_.erase(it);
  }
  Lease6 lease;
  lease.delegated = plan_.draw_delegation(home_for(client),
                                          config_.delegation_len,
                                          net::Prefix6{}, rng_);
  lease.issued = now;
  lease.expiry = now + config_.lease_time;
  leases_[client] = lease;
  return lease;
}

std::optional<Lease6> Dhcp6PdServer::renew(ClientId client, Hour now) {
  auto it = leases_.find(client);
  if (it == leases_.end() || now >= it->second.expiry) return std::nullopt;
  it->second.issued = now;
  it->second.expiry = now + config_.lease_time;
  return it->second;
}

void Dhcp6PdServer::release(ClientId client) { leases_.erase(client); }

void Dhcp6PdServer::restart() {
  // Bindings are volatile; the pool attachment (routing config) is not.
  leases_.clear();
}

// ---------------------------------------------------------------------------
// RadiusAllocator
// ---------------------------------------------------------------------------

RadiusAllocator::Session RadiusAllocator::connect(ClientId client, Hour now) {
  Session s;
  auto it = current_.find(client);
  // A fresh draw every session; the plan itself decides spatial locality.
  s.addr = it == current_.end() ? plan_.initial(rng_)
                                : plan_.next(it->second, rng_);
  current_[client] = s.addr;
  s.started = now;
  s.timeout_at = now + config_.session_timeout;
  return s;
}

// ---------------------------------------------------------------------------
// CpeDriver
// ---------------------------------------------------------------------------

CpeDriver::Observed CpeDriver::run(ClientId client, Hour from, Hour to) {
  Observed out;

  Hour now = from;
  Lease4 l4 = v4_.request(client, now);
  Lease6 l6 = v6_.request(client, now);
  out.v4.push_back({now, l4.addr});
  out.v6.push_back({now, l6.delegated});

  // Pre-draw reboot times.
  std::vector<std::pair<Hour, Hour>> reboots;  // (at, downtime)
  if (config_.reboots_per_year > 0) {
    double mean_gap = double(kHoursPerYear) / config_.reboots_per_year;
    double t = double(from) + rng_.exponential(mean_gap);
    while (t < double(to)) {
      Hour down = std::max<Hour>(
          1, Hour(rng_.exponential(config_.mean_downtime_hours)));
      reboots.emplace_back(Hour(t), down);
      t += double(down) + rng_.exponential(mean_gap);
    }
  }
  std::size_t next_reboot = 0;

  while (now < to) {
    // Next event: T1 renewal or a reboot, whichever comes first.
    Hour t1 = l4.issued + v4_.config().lease_time / 2;
    Hour t1_6 = l6.issued + v6_.config().lease_time / 2;
    Hour renew_at = std::min(t1, t1_6);
    Hour reboot_at = next_reboot < reboots.size()
                         ? reboots[next_reboot].first
                         : ~Hour(0);
    if (renew_at >= to && reboot_at >= to) break;

    if (reboot_at <= renew_at) {
      // CPE goes down; while down it cannot renew. If the downtime outlives
      // the lease, the lease expires at the server.
      Hour down = reboots[next_reboot].second;
      ++next_reboot;
      now = std::min(reboot_at + down, to);
      if (config_.release_on_reboot) {
        v4_.release(client);
        v6_.release(client);
      }
      if (now >= to) break;
      Lease4 n4 = v4_.request(client, now);
      if (n4.addr != l4.addr) out.v4.push_back({now, n4.addr});
      l4 = n4;
      Lease6 n6 = v6_.request(client, now);
      if (n6.delegated != l6.delegated) out.v6.push_back({now, n6.delegated});
      l6 = n6;
      continue;
    }

    now = renew_at;
    if (now >= to) break;
    if (renew_at == t1) {
      if (auto r = v4_.renew(client, now)) {
        l4 = *r;
      } else {
        Lease4 n4 = v4_.request(client, now);
        if (n4.addr != l4.addr) out.v4.push_back({now, n4.addr});
        l4 = n4;
      }
    }
    if (renew_at == t1_6) {
      if (auto r = v6_.renew(client, now)) {
        l6 = *r;
      } else {
        Lease6 n6 = v6_.request(client, now);
        if (n6.delegated != l6.delegated)
          out.v6.push_back({now, n6.delegated});
        l6 = n6;
      }
    }
  }
  return out;
}

}  // namespace dynamips::simnet
