// isp.h — per-ISP assignment-practice profiles.
//
// Each profile bundles everything the paper observed (or that we infer from
// its figures) about one ISP: BGP announcements, v4 change policies split by
// dual-stack capability (§3.2 shows dual-stack v4 durations are longer),
// the v6 policy, the v4<->v6 change coupling (§3.2: 90.6% same-hour changes
// in DTAG, mostly independent in Comcast), spatial stickiness (Table 2),
// pool structure (§5.2), delegated prefix lengths (§5.3), and CPE subnet
// behaviour. paper_isps() returns profiles for the ASes of Table 1 plus the
// additional networks named in the text, calibrated so the benchmark suite
// reproduces the published shapes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/rib.h"
#include "netaddr/prefix.h"
#include "simnet/policy.h"

namespace dynamips::simnet {

/// Complete description of one ISP's addressing practices.
struct IspProfile {
  std::string name;
  bgp::Asn asn = 0;
  std::string country;
  bgp::Registry registry = bgp::Registry::kRipe;
  bool mobile = false;      ///< cellular access network (CGNAT, /64 per UE)
  bool in_table1 = false;   ///< one of the ten ASes of Table 1

  std::vector<net::Prefix4> bgp4;
  std::vector<net::Prefix6> bgp6;

  /// v4 change policy for subscribers without IPv6 (non-dual-stack).
  ChangePolicy v4_nds;
  /// v4 change policy for dual-stacked subscribers (typically stickier).
  ChangePolicy v4_ds;
  /// v6 delegated-prefix change policy.
  ChangePolicy v6;

  /// Policy evolution (§3.2 "Evolution over time"): from `start` onwards the
  /// listed policies replace the base ones. Eras must be sorted by start.
  /// Models ISPs like DTAG and Orange whose assignment durations grew over
  /// the measurement years.
  struct PolicyEra {
    Hour start = 0;
    ChangePolicy v4_nds;
    ChangePolicy v4_ds;
    ChangePolicy v6;
  };
  std::vector<PolicyEra> eras;

  /// Policies in force at simulation hour `t`.
  const ChangePolicy& v4_nds_at(Hour t) const {
    const ChangePolicy* p = &v4_nds;
    for (const auto& e : eras)
      if (t >= e.start) p = &e.v4_nds;
    return *p;
  }
  const ChangePolicy& v4_ds_at(Hour t) const {
    const ChangePolicy* p = &v4_ds;
    for (const auto& e : eras)
      if (t >= e.start) p = &e.v4_ds;
    return *p;
  }
  const ChangePolicy& v6_at(Hour t) const {
    const ChangePolicy* p = &v6;
    for (const auto& e : eras)
      if (t >= e.start) p = &e.v6;
    return *p;
  }

  /// Fraction of subscribers that are dual-stacked.
  double dualstack_share = 0.6;
  /// Share of dual-stacked subscribers whose v4 nevertheless follows the
  /// non-dual-stack policy (§3.2: some DTAG dual-stack probes still
  /// renumber daily).
  double ds_uses_nds_share = 0.0;
  /// Fraction of subscribers with effectively static assignments.
  double static_share = 0.1;
  /// Probability that a v4 change triggers a simultaneous v6 change.
  double couple_v6_to_v4 = 0.3;

  /// Spatial stickiness (Table 2): P(stay in same /24) on a v4 change and
  /// P(stay in same BGP prefix | left the /24).
  double p_same24 = 0.05;
  double p_same_bgp4 = 0.6;

  /// v6 pool structure: internal pool prefix length (§5.2's "/40") and
  /// P(stay in same BGP prefix) on a v6 change (Table 2 v6 column).
  int v6_pool_len = 40;
  double p_same_bgp6 = 1.0;
  /// Size of the shared pool universe per v6 announcement.
  int v6_pools_per_bgp = 64;
  /// Number of home pools a subscriber's delegations are drawn from, and
  /// the share of draws going to the non-primary pools.
  int home_pool_count = 2;
  double home_pool_secondary_weight = 0.15;

  /// Distribution of prefix lengths delegated to subscribers.
  DelegationPolicy delegation;

  /// Fraction of CPEs that scramble the subnet-id bits (DTAG-style) instead
  /// of zero-filling, and the scramble behaviour itself.
  double cpe_scramble_share = 0.0;
  CpePolicy scramble_cpe{CpeSubnetMode::kScramble, 6.0};

  /// Atlas deployment footprint (Table 1), used to scale the simulations.
  int atlas_probes = 0;
  int atlas_ds_probes = 0;
};

/// Profiles for the ten Table-1 ASes, plus Sky U.K. (Fig. 6) and the other
/// periodically-renumbering networks named in §3.2 (Telefonica DE, M-net,
/// ANTEL, Global Village) and the long-duration U.S. ISPs of §3.2's
/// comparison (Charter, Cox). Deterministic: same list every call.
std::vector<IspProfile> paper_isps();

/// The subset of paper_isps() shown in Fig. 1 / Fig. 5 (DTAG, Orange,
/// Comcast, LGI, BT, Proximus).
std::vector<IspProfile> fig1_isps();

/// Find a profile by name (exact match) in paper_isps().
std::optional<IspProfile> find_isp(std::string_view name);

/// Announce every profile's prefixes into a RIB (the synthetic stand-in for
/// the RouteViews pfx2as data).
void announce_all(const std::vector<IspProfile>& isps, bgp::Rib& rib);

/// Derive an "evolution over time" variant of a profile (§3.2): from
/// `era_start` onwards, renewals stick more (renew_keep_prob moves
/// `keep_boost` of the way to 1) and administrative renumbering slows by
/// 2x, lengthening durations in later years as the paper observed for
/// DTAG and Orange.
IspProfile with_duration_growth(IspProfile base, Hour era_start,
                                double keep_boost);

}  // namespace dynamips::simnet
