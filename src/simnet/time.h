// time.h — discrete simulation time.
//
// The RIPE Atlas IP-echo dataset samples hourly, so the simulator's clock is
// an hour counter from the start of the simulated observation window.
#pragma once

#include <cstdint>

namespace dynamips::simnet {

/// Hours since the start of the simulated measurement window.
using Hour = std::uint64_t;

inline constexpr Hour kHoursPerDay = 24;
inline constexpr Hour kHoursPerWeek = 7 * kHoursPerDay;
/// Calendar-ish month (365/12 days), matching the paper's "1m" axis tick.
inline constexpr Hour kHoursPerMonth = 730;
inline constexpr Hour kHoursPerYear = 8760;

/// Sentinel for "assignment still active at the end of the window"
/// (right-censored; such durations are never counted, per §3.1).
inline constexpr Hour kNoEnd = ~Hour(0);

/// Day index of an hour (used by the CDN dataset, which is daily).
constexpr std::uint64_t day_of(Hour h) { return h / kHoursPerDay; }

}  // namespace dynamips::simnet
