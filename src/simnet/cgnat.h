// cgnat.h — Carrier-Grade NAT gateway model (§2.1).
//
// Cellular operators (and some fixed ISPs) place subscribers behind a CGNAT
// that multiplexes many internal clients onto a small pool of public
// addresses via port-block allocation. This model produces the observable
// the CDN analyses key on — which public /24 a subscriber's traffic egresses
// from, and how many subscribers share each public address — and exposes
// the allocator internals (block sizes, exhaustion, reclamation) for the
// tests and the multiplexing-degree discussion of Fig. 4a.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netaddr/ipv4.h"
#include "netaddr/prefix.h"
#include "netaddr/rng.h"
#include "simnet/time.h"

namespace dynamips::simnet {

/// A contiguous port block on one public address, leased to one subscriber.
struct PortBlock {
  net::IPv4Address public_addr;
  std::uint16_t first_port = 0;
  std::uint16_t port_count = 0;
  Hour expires = 0;
};

/// Port-block-allocating CGNAT gateway.
class CgnatGateway {
 public:
  struct Config {
    /// Ports per subscriber block (RFC 6431-era deployments use 512-4096).
    std::uint16_t block_size = 2048;
    /// First usable port (below are reserved).
    std::uint16_t first_port = 1024;
    /// Idle mapping lifetime; an inactive subscriber's block is reclaimed
    /// and a later flow gets a fresh block (often on another address).
    Hour mapping_timeout = 24;
  };

  /// `egress` lists the public /24 blocks the gateway owns.
  CgnatGateway(std::vector<net::Prefix4> egress, Config config,
               std::uint64_t seed);

  /// A subscriber sends traffic at `now`: returns the public address their
  /// flows egress from, allocating (or refreshing) a port block. Returns
  /// nullopt when every block on every address is exhausted.
  std::optional<net::IPv4Address> egress_for(std::uint64_t subscriber,
                                             Hour now);

  /// Number of distinct subscribers currently mapped to `addr`.
  std::size_t subscribers_on(net::IPv4Address addr) const;

  /// Total active mappings.
  std::size_t active_mappings() const { return mappings_.size(); }

  /// Maximum subscribers one public address can hold.
  std::size_t capacity_per_address() const {
    return std::size_t(65536 - config_.first_port) / config_.block_size;
  }

  /// Total subscriber capacity of the gateway.
  std::size_t total_capacity() const {
    return capacity_per_address() * addresses_.size();
  }

  const Config& config() const { return config_; }

 private:
  void reclaim_expired(Hour now);
  std::optional<PortBlock> allocate(Hour now);

  Config config_;
  net::Rng rng_;
  std::vector<net::IPv4Address> addresses_;
  // Per public address: which block slots are taken.
  std::unordered_map<net::IPv4Address, std::vector<bool>> slots_;
  struct Mapping {
    PortBlock block;
    std::size_t slot = 0;
  };
  std::unordered_map<std::uint64_t, Mapping> mappings_;
};

}  // namespace dynamips::simnet
