// dhcpd.h — protocol-level address-assignment servers.
//
// The statistical TimelineGenerator draws assignment durations directly
// from calibrated distributions. This module models the *mechanisms* the
// paper describes in §2.1/§2.2 — DHCP lease tables with T1 renewals,
// DHCPv6 prefix delegation, RADIUS session allocation without binding
// memory, server state loss, and CPE reboot behaviour — so the emergent
// dynamics (durations at lease multiples, changes after outages longer
// than the lease, renumbering on every reconnect under RADIUS) can be
// produced from first principles and cross-validated against the
// statistical model (see tests/test_dhcpd.cpp and bench/ablation_mechanism).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netaddr/ipv4.h"
#include "netaddr/prefix.h"
#include "netaddr/rng.h"
#include "simnet/pools.h"
#include "simnet/time.h"

namespace dynamips::simnet {

/// A client identifier (DUID / MAC / RADIUS user).
using ClientId = std::uint64_t;

/// One IPv4 lease as held by the server.
struct Lease4 {
  net::IPv4Address addr;
  Hour issued = 0;
  Hour expiry = 0;
};

/// DHCPv4 server with a lease table over an address plan.
///
/// Behavioural knobs mirror real deployments: `remember_expired` keeps the
/// client→address binding after expiry (many cable ISPs re-issue the same
/// address; Comcast-style stability), while RADIUS-like deployments are
/// modelled by Dhcp4Server{.remember_expired=false} plus reconnects, or by
/// RadiusAllocator below.
class Dhcp4Server {
 public:
  struct Config {
    Hour lease_time = 24 * kHoursPerDay;
    /// Re-issue the previous address to a returning client whose lease
    /// expired (server keeps expired bindings).
    bool remember_expired = true;
  };

  Dhcp4Server(V4AddressPlan plan, Config config, std::uint64_t seed)
      : plan_(std::move(plan)), config_(config), rng_(seed) {}

  /// DISCOVER/REQUEST: lease an address to the client. A client with an
  /// active lease gets it back; an expired binding is re-issued only when
  /// `remember_expired`.
  Lease4 request(ClientId client, Hour now);

  /// RENEW (at T1): extend the current lease in place. Fails (nullopt) if
  /// the lease has already expired — the client must re-REQUEST.
  std::optional<Lease4> renew(ClientId client, Hour now);

  /// RELEASE: client gives the address back; binding forgotten.
  void release(ClientId client);

  /// The server restarts and loses volatile state (the §2.2 "outages of
  /// the ISP's server" cause). All bindings are forgotten.
  void restart();

  std::size_t active_bindings() const { return leases_.size(); }
  const Config& config() const { return config_; }

 private:
  V4AddressPlan plan_;
  Config config_;
  net::Rng rng_;
  std::unordered_map<ClientId, Lease4> leases_;
};

/// One delegated-prefix lease (DHCPv6 IA_PD).
struct Lease6 {
  net::Prefix6 delegated;
  Hour issued = 0;
  Hour expiry = 0;
};

/// DHCPv6 prefix-delegation server over a pool plan.
class Dhcp6PdServer {
 public:
  struct Config {
    Hour lease_time = 24 * kHoursPerDay;
    int delegation_len = 56;
    bool remember_expired = true;
  };

  Dhcp6PdServer(V6AddressPlan plan, Config config, std::uint64_t seed)
      : plan_(std::move(plan)), config_(config), rng_(seed) {}

  /// SOLICIT/REQUEST for an IA_PD.
  Lease6 request(ClientId client, Hour now);

  /// RENEW the delegation in place (same prefix, extended lifetime).
  std::optional<Lease6> renew(ClientId client, Hour now);

  void release(ClientId client);
  void restart();

  std::size_t active_bindings() const { return leases_.size(); }
  const Config& config() const { return config_; }

 private:
  HomePools home_for(ClientId client);

  V6AddressPlan plan_;
  Config config_;
  net::Rng rng_;
  std::unordered_map<ClientId, Lease6> leases_;
  std::unordered_map<ClientId, HomePools> homes_;
};

/// RADIUS-style session allocator: every session gets a fresh address,
/// sessions end at SessionTimeout, and the server keeps no binding memory —
/// the mechanism behind the strict 24-hour renumbering of German ISPs.
class RadiusAllocator {
 public:
  struct Config {
    Hour session_timeout = 24;
  };

  RadiusAllocator(V4AddressPlan plan, Config config, std::uint64_t seed)
      : plan_(std::move(plan)), config_(config), rng_(seed) {}

  struct Session {
    net::IPv4Address addr;
    Hour started = 0;
    Hour timeout_at = 0;
  };

  /// Access-Request: start a session. Always allocates a fresh address
  /// (possibly equal to the previous one only by coincidence).
  Session connect(ClientId client, Hour now);

  /// The session's forced end time (the CPE immediately reconnects).
  const Config& config() const { return config_; }

 private:
  V4AddressPlan plan_;
  Config config_;
  net::Rng rng_;
  std::unordered_map<ClientId, net::IPv4Address> current_;
};

/// Drives one CPE against the servers through simulated time, producing
/// the change hours a measurement platform would observe. Models §2.2:
/// periodic changes (lease expiry without renewal under RADIUS), changes
/// due to CPE outages longer than the remaining lease, and ISP-side
/// restarts.
class CpeDriver {
 public:
  struct Config {
    /// CPE reboots per year (power cuts etc.).
    double reboots_per_year = 4;
    /// Mean reboot downtime in hours (heavy-tailed in practice; we draw
    /// exponential and most reboots are short).
    double mean_downtime_hours = 2;
    /// Whether the CPE releases its lease on clean shutdown (most do not).
    bool release_on_reboot = false;
  };

  CpeDriver(Dhcp4Server& v4, Dhcp6PdServer& v6, Config config,
            std::uint64_t seed)
      : v4_(v4), v6_(v6), config_(config), rng_(seed) {}

  struct Assignment4Like {
    Hour start;
    net::IPv4Address addr;
  };
  struct Assignment6Like {
    Hour start;
    net::Prefix6 delegated;
  };
  struct Observed {
    std::vector<Assignment4Like> v4;
    std::vector<Assignment6Like> v6;
  };

  /// Run the client from `from` to `to`; returns each (re)assignment with
  /// its start hour. Renewals happen at T1 = lease/2 as in RFC 2131.
  Observed run(ClientId client, Hour from, Hour to);

 private:
  Dhcp4Server& v4_;
  Dhcp6PdServer& v6_;
  Config config_;
  net::Rng rng_;
};

}  // namespace dynamips::simnet
