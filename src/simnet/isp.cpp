#include "simnet/isp.h"

namespace dynamips::simnet {

namespace {

using bgp::Registry;
using net::Prefix4;
using net::Prefix6;

std::vector<Prefix4> p4(std::initializer_list<const char*> texts) {
  std::vector<Prefix4> out;
  for (const char* t : texts) out.push_back(*Prefix4::parse(t));
  return out;
}

std::vector<Prefix6> p6(std::initializer_list<const char*> texts) {
  std::vector<Prefix6> out;
  for (const char* t : texts) out.push_back(*Prefix6::parse(t));
  return out;
}

// ---------------------------------------------------------------------------
// Calibration notes. Lease-based policies put their mode at the lease length
// (Fig. 1's spikes); renew_keep_prob stretches the tail to multiples of the
// lease. Non-periodic ISPs use admin renumbering (exponential) plus outage-
// driven changes. Spatial parameters come straight from Table 2.
// ---------------------------------------------------------------------------

IspProfile dtag() {
  IspProfile p;
  p.name = "DTAG";
  p.asn = 3320;
  p.country = "Germany";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"79.192.0.0/11", "87.128.0.0/11", "217.80.0.0/12"});
  p.bgp6 = p6({"2003::/19"});
  // 24-hour renumbering; non-dual-stack probes almost always change daily.
  p.v4_nds = {.lease_hours = 24, .renew_keep_prob = 0.30,
              .mean_admin_hours = 0, .outages_per_year = 4,
              .change_on_outage_prob = 0.9};
  // Dual-stack v4 is stickier, but a share still renumbers daily (§3.2).
  p.v4_ds = {.lease_hours = 24, .renew_keep_prob = 0.75,
             .mean_admin_hours = 0, .outages_per_year = 4,
             .change_on_outage_prob = 0.7};
  p.v6 = {.lease_hours = 24, .renew_keep_prob = 0.60,
          .mean_admin_hours = 20000, .outages_per_year = 4,
          .change_on_outage_prob = 0.5};
  p.dualstack_share = 0.68;
  p.static_share = 0.05;
  p.ds_uses_nds_share = 0.30;
  p.couple_v6_to_v4 = 0.906;  // measured in §3.2
  p.p_same24 = 0.06;          // Table 2: 94% diff /24
  p.p_same_bgp4 = 0.71;       // 27% of changes cross BGP prefixes
  p.v6_pool_len = 40;         // Fig. 5b: CPLs cluster at 41..47
  p.p_same_bgp6 = 1.0;        // Table 2: 0% v6 cross-BGP
  p.home_pool_count = 2;
  p.home_pool_secondary_weight = 0.02;  // Fig. 5b: few CPLs in 24..40
  p.delegation.entries = {{56, 1.0}};  // verified /56 [23]
  p.cpe_scramble_share = 0.35;  // branded CPEs scramble subnet bits [25]
  p.scramble_cpe = {CpeSubnetMode::kScramble, 8.0};
  p.atlas_probes = 589;
  p.atlas_ds_probes = 402;
  return p;
}

IspProfile comcast() {
  IspProfile p;
  p.name = "Comcast";
  p.asn = 7922;
  p.country = "U.S.";
  p.registry = Registry::kArin;
  p.in_table1 = true;
  p.bgp4 = p4({"24.0.0.0/12", "67.160.0.0/11", "98.192.0.0/10"});
  p.bgp6 = p6({"2601::/20", "2603:3000::/24"});
  // No periodic renumbering; changes come from outages/maintenance only.
  p.v4_nds = {.lease_hours = 0, .renew_keep_prob = 0,
              .mean_admin_hours = 3000, .outages_per_year = 4,
              .change_on_outage_prob = 0.5};
  p.v4_ds = {.lease_hours = 0, .renew_keep_prob = 0,
             .mean_admin_hours = 12000, .outages_per_year = 3,
             .change_on_outage_prob = 0.25};
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 10000, .outages_per_year = 3,
          .change_on_outage_prob = 0.35};
  p.dualstack_share = 0.68;
  p.static_share = 0.20;
  p.couple_v6_to_v4 = 0.10;  // §3.2: most changes do NOT co-occur
  p.p_same24 = 0.51;         // Table 2: 49% diff /24
  p.p_same_bgp4 = 0.12;      // 43% cross-BGP out of 49% that move
  p.v6_pool_len = 40;        // Fig. 5a: /40 is the common CPL
  p.p_same_bgp6 = 0.90;      // Table 2: 10% v6 cross-BGP
  p.home_pool_count = 2;
  p.delegation.entries = {{60, 0.55}, {56, 0.20}, {64, 0.25}};
  p.atlas_probes = 415;
  p.atlas_ds_probes = 283;
  return p;
}

IspProfile orange() {
  IspProfile p;
  p.name = "Orange";
  p.asn = 3215;
  p.country = "France";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"2.0.0.0/12", "90.0.0.0/12", "86.192.0.0/11"});
  p.bgp6 = p6({"2a01:c000::/19", "2a01:9000::/20"});
  // Weekly renumbering for non-dual-stack; dual-stack far stickier
  // ("addresses do not appear to change after 7-day durations").
  p.v4_nds = {.lease_hours = 168, .renew_keep_prob = 0.15,
              .mean_admin_hours = 0, .outages_per_year = 4,
              .change_on_outage_prob = 0.5};
  p.v4_ds = {.lease_hours = 168, .renew_keep_prob = 0.88,
             .mean_admin_hours = 25000, .outages_per_year = 4,
             .change_on_outage_prob = 0.2};
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 30000, .outages_per_year = 4,
          .change_on_outage_prob = 0.08};
  p.dualstack_share = 0.55;
  p.static_share = 0.10;
  p.couple_v6_to_v4 = 0.15;
  p.p_same24 = 0.01;     // Table 2: 99% diff /24
  p.p_same_bgp4 = 0.39;  // 60% cross-BGP
  p.v6_pool_len = 36;    // Fig. 5c: CPLs cluster between 36 and 48
  p.p_same_bgp6 = 0.98;  // Table 2: 2%
  p.home_pool_count = 2;
  p.delegation.entries = {{56, 1.0}};  // verified /56 [22]
  p.atlas_probes = 425;
  p.atlas_ds_probes = 236;
  return p;
}

IspProfile lgi() {
  IspProfile p;
  p.name = "LGI";
  p.asn = 6830;
  p.country = "many";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"62.108.0.0/15", "80.112.0.0/12", "84.24.0.0/13"});
  p.bgp6 = p6({"2a02:a400::/22", "2a02:5800::/22"});
  // LGI is the paper's counterexample: dual-stack probes account for 64%
  // of v4 changes despite being 32% of probes (Table 1).
  p.v4_nds = {.lease_hours = 0, .renew_keep_prob = 0,
              .mean_admin_hours = 7000, .outages_per_year = 5,
              .change_on_outage_prob = 0.3};
  p.v4_ds = {.lease_hours = 0, .renew_keep_prob = 0,
             .mean_admin_hours = 1500, .outages_per_year = 5,
             .change_on_outage_prob = 0.5};
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 22000, .outages_per_year = 5,
          .change_on_outage_prob = 0.10};
  p.dualstack_share = 0.32;
  p.static_share = 0.10;
  p.couple_v6_to_v4 = 0.30;
  p.p_same24 = 0.41;     // Table 2: 59% diff /24
  p.p_same_bgp4 = 0.76;  // 14% cross-BGP
  p.v6_pool_len = 44;    // Fig. 5e: consecutive assignments share 44 bits
  p.p_same_bgp6 = 0.98;
  p.home_pool_count = 2;
  p.delegation.entries = {{56, 0.6}, {64, 0.4}};
  p.atlas_probes = 445;
  p.atlas_ds_probes = 141;
  return p;
}

IspProfile free_sas() {
  IspProfile p;
  p.name = "Free SAS";
  p.asn = 12322;
  p.country = "France";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"78.192.0.0/10", "82.224.0.0/11"});
  p.bgp6 = p6({"2a01:e000::/20", "2a01:b000::/20"});
  p.v4_nds = {.lease_hours = 0, .renew_keep_prob = 0,
              .mean_admin_hours = 15000, .outages_per_year = 3,
              .change_on_outage_prob = 0.25};
  p.v4_ds = {.lease_hours = 0, .renew_keep_prob = 0,
             .mean_admin_hours = 18000, .outages_per_year = 3,
             .change_on_outage_prob = 0.20};
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 40000, .outages_per_year = 3,
          .change_on_outage_prob = 0.05};
  p.dualstack_share = 0.65;
  p.static_share = 0.25;
  p.couple_v6_to_v4 = 0.35;
  p.p_same24 = 0.0;      // Table 2: 100% diff /24
  p.p_same_bgp4 = 0.28;  // 72% cross-BGP
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 0.58;  // Table 2: 42% — the outlier
  p.home_pool_count = 3;
  p.delegation.entries = {{60, 0.5}, {64, 0.5}};
  p.atlas_probes = 138;
  p.atlas_ds_probes = 90;
  return p;
}

IspProfile kabel_de() {
  IspProfile p;
  p.name = "Kabel DE";
  p.asn = 31334;
  p.country = "Germany";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"188.192.0.0/11", "95.88.0.0/13"});
  p.bgp6 = p6({"2a02:8100::/22", "2a00:fe00::/23"});
  p.v4_nds = {.lease_hours = 0, .renew_keep_prob = 0,
              .mean_admin_hours = 6000, .outages_per_year = 4,
              .change_on_outage_prob = 0.5};
  p.v4_ds = {.lease_hours = 0, .renew_keep_prob = 0,
             .mean_admin_hours = 9000, .outages_per_year = 4,
             .change_on_outage_prob = 0.4};
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 25000, .outages_per_year = 4,
          .change_on_outage_prob = 0.15};
  p.dualstack_share = 0.55;
  p.static_share = 0.10;
  p.couple_v6_to_v4 = 0.40;
  p.p_same24 = 0.16;     // Table 2: 84% diff /24
  p.p_same_bgp4 = 0.29;  // 60% cross-BGP
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 0.975;  // Table 2: 5%
  p.home_pool_count = 2;
  p.delegation.entries = {{62, 0.85}, {56, 0.15}};  // branded CPEs ask /62 [11]
  p.atlas_probes = 152;
  p.atlas_ds_probes = 84;
  return p;
}

IspProfile proximus() {
  IspProfile p;
  p.name = "Proximus";
  p.asn = 5432;
  p.country = "Belgium";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"81.240.0.0/12", "91.176.0.0/12"});
  p.bgp6 = p6({"2a02:b000::/21"});
  // 1.5-day mode in non-dual-stack v4 (Fig. 1).
  p.v4_nds = {.lease_hours = 36, .renew_keep_prob = 0.30,
              .mean_admin_hours = 0, .outages_per_year = 4,
              .change_on_outage_prob = 0.6};
  p.v4_ds = {.lease_hours = 36, .renew_keep_prob = 0.88,
             .mean_admin_hours = 0, .outages_per_year = 4,
             .change_on_outage_prob = 0.3};
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 6000, .outages_per_year = 4,
          .change_on_outage_prob = 0.4};
  p.dualstack_share = 0.56;
  p.static_share = 0.10;
  p.couple_v6_to_v4 = 0.45;
  p.p_same24 = 0.12;     // Table 2: 88% diff /24
  p.p_same_bgp4 = 0.36;  // 56% cross-BGP
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 1.0;   // Table 2: 0%
  p.home_pool_count = 2;
  p.delegation.entries = {{56, 0.8}, {64, 0.2}};
  p.atlas_probes = 114;
  p.atlas_ds_probes = 64;
  return p;
}

IspProfile versatel() {
  IspProfile p;
  p.name = "Versatel";
  p.asn = 8881;
  p.country = "Germany";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"89.244.0.0/14", "84.128.0.0/12"});
  p.bgp6 = p6({"2a02:2450::/29", "2a02:2e00::/23"});
  // 24-hour renumbering in BOTH families (German RADIUS style).
  p.v4_nds = {.lease_hours = 24, .renew_keep_prob = 0.08,
              .mean_admin_hours = 0, .outages_per_year = 4,
              .change_on_outage_prob = 1.0};
  p.v4_ds = {.lease_hours = 24, .renew_keep_prob = 0.15,
             .mean_admin_hours = 0, .outages_per_year = 4,
             .change_on_outage_prob = 1.0};
  p.v6 = {.lease_hours = 24, .renew_keep_prob = 0.18,
          .mean_admin_hours = 0, .outages_per_year = 4,
          .change_on_outage_prob = 1.0};
  p.dualstack_share = 0.71;
  p.static_share = 0.02;
  p.couple_v6_to_v4 = 0.90;
  p.p_same24 = 0.07;     // Table 2: 93% diff /24
  p.p_same_bgp4 = 0.37;  // 59% cross-BGP
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 0.99;  // Table 2: 1%
  p.home_pool_count = 2;
  p.delegation.entries = {{56, 1.0}};
  p.atlas_probes = 80;
  p.atlas_ds_probes = 57;
  return p;
}

IspProfile bt() {
  IspProfile p;
  p.name = "BT";
  p.asn = 2856;
  p.country = "U.K.";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"81.128.0.0/11", "86.128.0.0/11", "217.32.0.0/12"});
  p.bgp6 = p6({"2a00:23c0::/26"});
  // Two-week mode in non-dual-stack v4.
  p.v4_nds = {.lease_hours = 336, .renew_keep_prob = 0.22,
              .mean_admin_hours = 0, .outages_per_year = 4,
              .change_on_outage_prob = 0.5};
  p.v4_ds = {.lease_hours = 336, .renew_keep_prob = 0.70,
             .mean_admin_hours = 0, .outages_per_year = 4,
             .change_on_outage_prob = 0.3};
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 18000, .outages_per_year = 4,
          .change_on_outage_prob = 0.10};
  p.dualstack_share = 0.34;
  p.static_share = 0.10;
  p.couple_v6_to_v4 = 0.30;
  p.p_same24 = 0.06;     // Table 2: 94% diff /24
  p.p_same_bgp4 = 0.52;  // 45% cross-BGP
  // Fig. 5f is bimodal (28..32 and 41..54): home pools sit in a /26-rooted
  // space, so cross-pool draws share only the announcement bits while
  // same-pool draws share the /44 pool.
  p.v6_pool_len = 44;
  p.p_same_bgp6 = 1.0;  // Table 2: 0%
  p.home_pool_count = 3;
  p.home_pool_secondary_weight = 0.35;  // Fig. 5f: strong low-CPL mode
  p.delegation.entries = {{56, 0.7}, {64, 0.3}};
  p.atlas_probes = 170;
  p.atlas_ds_probes = 58;
  return p;
}

IspProfile netcologne() {
  IspProfile p;
  p.name = "Netcologne";
  p.asn = 8422;
  p.country = "Germany";
  p.registry = Registry::kRipe;
  p.in_table1 = true;
  p.bgp4 = p4({"78.34.0.0/15", "89.0.0.0/14"});
  p.bgp6 = p6({"2001:4dd0::/28", "2001:b700::/28"});
  // 24-hour renumbering in both families.
  p.v4_nds = {.lease_hours = 24, .renew_keep_prob = 0.10,
              .mean_admin_hours = 0, .outages_per_year = 4,
              .change_on_outage_prob = 1.0};
  p.v4_ds = {.lease_hours = 24, .renew_keep_prob = 0.18,
             .mean_admin_hours = 0, .outages_per_year = 4,
             .change_on_outage_prob = 1.0};
  p.v6 = {.lease_hours = 24, .renew_keep_prob = 0.22,
          .mean_admin_hours = 0, .outages_per_year = 4,
          .change_on_outage_prob = 1.0};
  p.dualstack_share = 0.93;
  p.static_share = 0.02;
  p.couple_v6_to_v4 = 0.88;
  p.p_same24 = 0.01;     // Table 2: 99% diff /24
  p.p_same_bgp4 = 0.38;  // 61% cross-BGP
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 0.93;  // Table 2: 7%
  p.home_pool_count = 2;
  p.delegation.entries = {{48, 0.8}, {56, 0.2}};  // verified /48 [33]
  p.atlas_probes = 43;
  p.atlas_ds_probes = 40;
  return p;
}

IspProfile sky_uk() {
  IspProfile p;
  p.name = "Sky U.K.";
  p.asn = 5607;
  p.country = "U.K.";
  p.registry = Registry::kRipe;
  p.in_table1 = false;  // appears in Fig. 6 only
  p.bgp4 = p4({"90.192.0.0/11", "2.96.0.0/12"});
  p.bgp6 = p6({"2a02:c7c0::/27"});
  p.v4_nds = {.lease_hours = 0, .renew_keep_prob = 0,
              .mean_admin_hours = 5000, .outages_per_year = 4,
              .change_on_outage_prob = 0.5};
  p.v4_ds = {.lease_hours = 0, .renew_keep_prob = 0,
             .mean_admin_hours = 8000, .outages_per_year = 4,
             .change_on_outage_prob = 0.4};
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 15000, .outages_per_year = 4,
          .change_on_outage_prob = 0.2};
  p.dualstack_share = 0.70;
  p.static_share = 0.10;
  p.couple_v6_to_v4 = 0.40;
  p.p_same24 = 0.05;
  p.p_same_bgp4 = 0.5;
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 1.0;
  p.home_pool_count = 2;
  p.delegation.entries = {{56, 1.0}};  // verified /56 [61]
  p.atlas_probes = 68;
  p.atlas_ds_probes = 45;
  return p;
}

// --- Networks outside Table 1, named in §3.2's periodicity discussion -----

IspProfile periodic_extra(const char* name, bgp::Asn asn, const char* country,
                          Registry reg, Hour period, const char* v4a,
                          const char* v4b, const char* v6block) {
  IspProfile p;
  p.name = name;
  p.asn = asn;
  p.country = country;
  p.registry = reg;
  p.bgp4 = p4({v4a, v4b});
  p.bgp6 = p6({v6block});
  p.v4_nds = {.lease_hours = period, .renew_keep_prob = 0.15,
              .mean_admin_hours = 0, .outages_per_year = 4,
              .change_on_outage_prob = 0.9};
  p.v4_ds = {.lease_hours = period, .renew_keep_prob = 0.30,
             .mean_admin_hours = 0, .outages_per_year = 4,
             .change_on_outage_prob = 0.9};
  p.v6 = {.lease_hours = period, .renew_keep_prob = 0.30,
          .mean_admin_hours = 0, .outages_per_year = 4,
          .change_on_outage_prob = 0.9};
  p.dualstack_share = 0.5;
  p.static_share = 0.05;
  p.couple_v6_to_v4 = 0.8;
  p.p_same24 = 0.05;
  p.p_same_bgp4 = 0.5;
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 1.0;
  p.home_pool_count = 2;
  p.delegation.entries = {{56, 0.8}, {64, 0.2}};
  p.atlas_probes = 25;
  p.atlas_ds_probes = 15;
  return p;
}

IspProfile us_long(const char* name, bgp::Asn asn, const char* v4a,
                   const char* v4b, const char* v6block) {
  IspProfile p;
  p.name = name;
  p.asn = asn;
  p.country = "U.S.";
  p.registry = Registry::kArin;
  p.bgp4 = p4({v4a, v4b});
  p.bgp6 = p6({v6block});
  p.v4_nds = {.lease_hours = 0, .renew_keep_prob = 0,
              .mean_admin_hours = 9000, .outages_per_year = 3,
              .change_on_outage_prob = 0.3};
  p.v4_ds = p.v4_nds;
  p.v6 = {.lease_hours = 0, .renew_keep_prob = 0,
          .mean_admin_hours = 12000, .outages_per_year = 3,
          .change_on_outage_prob = 0.3};
  p.dualstack_share = 0.6;
  p.static_share = 0.25;
  p.couple_v6_to_v4 = 0.15;
  p.p_same24 = 0.5;
  p.p_same_bgp4 = 0.2;
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 0.95;
  p.home_pool_count = 2;
  p.delegation.entries = {{60, 0.6}, {56, 0.2}, {64, 0.2}};
  p.atlas_probes = 30;
  p.atlas_ds_probes = 18;
  return p;
}

}  // namespace

std::vector<IspProfile> paper_isps() {
  std::vector<IspProfile> out;
  out.push_back(dtag());
  out.push_back(comcast());
  out.push_back(orange());
  out.push_back(lgi());
  out.push_back(free_sas());
  out.push_back(kabel_de());
  out.push_back(proximus());
  out.push_back(versatel());
  out.push_back(bt());
  out.push_back(netcologne());
  out.push_back(sky_uk());
  // Other periodically-renumbering networks named in §3.2.
  out.push_back(periodic_extra("Telefonica DE", 6805, "Germany",
                               Registry::kRipe, 24, "91.32.0.0/13",
                               "87.224.0.0/13", "2a02:3030::/27"));
  out.push_back(periodic_extra("M-net", 8767, "Germany", Registry::kRipe, 24,
                               "188.174.0.0/15", "89.26.0.0/17",
                               "2001:a60::/29"));
  out.push_back(periodic_extra("ANTEL", 6057, "Uruguay", Registry::kLacnic,
                               12, "167.56.0.0/13", "179.24.0.0/14",
                               "2800:a0::/26"));
  out.push_back(periodic_extra("Global Village", 18881, "Brazil",
                               Registry::kLacnic, 48, "177.0.0.0/13",
                               "189.56.0.0/14", "2804:14c::/31"));
  // Long-duration U.S. ISPs used in §3.2's comparison with prior work.
  out.push_back(us_long("Charter", 20115, "66.160.0.0/12", "71.80.0.0/13",
                        "2600:6c00::/24"));
  out.push_back(us_long("Cox", 22773, "68.96.0.0/13", "98.160.0.0/12",
                        "2600:8800::/25"));
  return out;
}

std::vector<IspProfile> fig1_isps() {
  std::vector<IspProfile> out;
  for (const char* n : {"DTAG", "Orange", "Comcast", "LGI", "BT", "Proximus"})
    out.push_back(*find_isp(n));
  return out;
}

std::optional<IspProfile> find_isp(std::string_view name) {
  for (auto& p : paper_isps())
    if (p.name == name) return p;
  return std::nullopt;
}

IspProfile with_duration_growth(IspProfile base, Hour era_start,
                                double keep_boost) {
  auto grow = [&](ChangePolicy p) {
    p.renew_keep_prob += keep_boost * (1.0 - p.renew_keep_prob);
    if (p.mean_admin_hours > 0) p.mean_admin_hours *= 2;
    p.change_on_outage_prob *= 0.5;
    return p;
  };
  IspProfile::PolicyEra era;
  era.start = era_start;
  era.v4_nds = grow(base.v4_nds);
  era.v4_ds = grow(base.v4_ds);
  era.v6 = grow(base.v6);
  base.eras.push_back(era);
  return base;
}

void announce_all(const std::vector<IspProfile>& isps, bgp::Rib& rib) {
  for (const auto& isp : isps) {
    bgp::Origin origin{isp.asn, isp.registry};
    for (const auto& p : isp.bgp4) rib.announce(p, origin);
    for (const auto& p : isp.bgp6) rib.announce(p, origin);
  }
}

}  // namespace dynamips::simnet
