// subscriber.h — per-subscriber assignment timelines.
//
// The generator turns an IspProfile into event-driven assignment histories:
// a sequence of IPv4 address segments and (for dual-stacked subscribers)
// IPv6 delegated-prefix/LAN-/64 segments, with v4->v6 change coupling and
// CPE subnet-scrambling modelled. Timelines carry ground truth (causes,
// delegated lengths, home pools, CPE mode) so the analysis pipeline's
// inferences can be validated in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "netaddr/ipv4.h"
#include "netaddr/prefix.h"
#include "netaddr/rng.h"
#include "simnet/isp.h"
#include "simnet/policy.h"
#include "simnet/pools.h"
#include "simnet/time.h"

namespace dynamips::simnet {

/// One IPv4 assignment: [start, end) in hours. The final segment of a
/// timeline is right-censored: end equals the window end and end_cause is
/// kNone.
struct Assignment4 {
  Hour start = 0;
  Hour end = 0;
  net::IPv4Address addr;
  ChangeCause end_cause = ChangeCause::kNone;
};

/// One IPv6 assignment: the ISP-delegated prefix (ground truth) and the
/// /64 network component the CPE advertised on the LAN (what measurements
/// observe).
struct Assignment6 {
  Hour start = 0;
  Hour end = 0;
  net::Prefix6 delegated;       ///< ground-truth delegated prefix
  std::uint64_t lan64 = 0;      ///< network64 of the advertised LAN /64
  ChangeCause end_cause = ChangeCause::kNone;
};

/// Full ground-truth history for one subscriber over the window.
struct SubscriberTimeline {
  std::uint32_t subscriber_id = 0;
  bool dual_stack = false;
  bool is_static = false;
  CpeSubnetMode cpe_mode = CpeSubnetMode::kZeroFill;
  int delegated_len = 64;       ///< ground-truth delegation length
  HomePools home;               ///< ground-truth pool attachment
  std::vector<Assignment4> v4;
  std::vector<Assignment6> v6;  ///< empty for non-dual-stack subscribers
};

/// Deterministic per-subscriber timeline generation for one ISP.
///
/// Thread safety: `generate` is const and draws from a per-subscriber RNG
/// stream derived via net::mix_seed from (seed, id), so concurrent calls
/// from multiple shards are safe and order-independent.
class TimelineGenerator {
 public:
  TimelineGenerator(IspProfile profile, std::uint64_t seed);

  /// Generate the timeline of subscriber `id` over [start, end). The result
  /// depends only on (profile, seed, id, start, end) — stable across calls
  /// and across subscriber ordering.
  SubscriberTimeline generate(std::uint32_t id, Hour start, Hour end) const;

  const IspProfile& profile() const { return profile_; }

 private:
  std::uint64_t lan64_for(const net::Prefix6& delegated, CpeSubnetMode mode,
                          std::uint64_t constant_id, net::Rng& rng) const;

  IspProfile profile_;
  V4AddressPlan plan4_;
  V6AddressPlan plan6_;
  std::uint64_t seed_;
};

}  // namespace dynamips::simnet
