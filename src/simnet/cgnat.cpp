#include "simnet/cgnat.h"

#include <cassert>

namespace dynamips::simnet {

CgnatGateway::CgnatGateway(std::vector<net::Prefix4> egress, Config config,
                           std::uint64_t seed)
    : config_(config), rng_(seed) {
  assert(!egress.empty());
  assert(config_.block_size > 0);
  for (const auto& block : egress) {
    assert(block.length() >= 16 && block.length() <= 24);
    std::uint32_t hosts = 1u << (32 - block.length());
    for (std::uint32_t h = 1; h + 1 < hosts; ++h)
      addresses_.push_back(net::IPv4Address{block.address().value() + h});
  }
  std::size_t per_addr = capacity_per_address();
  for (auto a : addresses_) slots_[a].assign(per_addr, false);
}

void CgnatGateway::reclaim_expired(Hour now) {
  for (auto it = mappings_.begin(); it != mappings_.end();) {
    if (it->second.block.expires <= now) {
      slots_[it->second.block.public_addr][it->second.slot] = false;
      it = mappings_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<PortBlock> CgnatGateway::allocate(Hour now) {
  // Random first-fit: start from a random address to spread load.
  std::size_t start = std::size_t(rng_.uniform(addresses_.size()));
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    net::IPv4Address addr = addresses_[(start + i) % addresses_.size()];
    std::vector<bool>& taken = slots_[addr];
    for (std::size_t s = 0; s < taken.size(); ++s) {
      if (taken[s]) continue;
      taken[s] = true;
      PortBlock block;
      block.public_addr = addr;
      block.first_port =
          std::uint16_t(config_.first_port + s * config_.block_size);
      block.port_count = config_.block_size;
      block.expires = now + config_.mapping_timeout;
      return block;
    }
  }
  return std::nullopt;
}

std::optional<net::IPv4Address> CgnatGateway::egress_for(
    std::uint64_t subscriber, Hour now) {
  reclaim_expired(now);
  auto it = mappings_.find(subscriber);
  if (it != mappings_.end()) {
    // Active mapping: refresh the idle timer, egress unchanged.
    it->second.block.expires = now + config_.mapping_timeout;
    return it->second.block.public_addr;
  }
  auto block = allocate(now);
  if (!block) return std::nullopt;
  Mapping m;
  m.block = *block;
  m.slot = std::size_t(block->first_port - config_.first_port) /
           config_.block_size;
  mappings_[subscriber] = m;
  return block->public_addr;
}

std::size_t CgnatGateway::subscribers_on(net::IPv4Address addr) const {
  std::size_t n = 0;
  for (const auto& [sub, m] : mappings_) n += m.block.public_addr == addr;
  return n;
}

}  // namespace dynamips::simnet
