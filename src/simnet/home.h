// home.h — devices inside the subscriber LAN (§2.1, §2.3).
//
// The CPE advertises a /64; each device completes its addresses via SLAAC.
// Three IID strategies coexist in real homes and have sharply different
// privacy properties, which the tracking analysis measures:
//  * EUI-64 (RFC 4291 App. A): MAC-derived, stable forever — trackable
//    across renumbering;
//  * privacy extensions (RFC 4941): random, regenerated periodically and on
//    prefix change — untrackable;
//  * stable-opaque (RFC 7217, recommended by RFC 8064): deterministic per
//    (device, network) — stable inside one network, unlinkable across
//    networks.
#pragma once

#include <cstdint>
#include <vector>

#include "netaddr/iid.h"
#include "netaddr/ipv6.h"
#include "netaddr/rng.h"
#include "simnet/subscriber.h"
#include "simnet/time.h"

namespace dynamips::simnet {

/// How a device forms its interface identifier.
enum class IidMode : std::uint8_t { kEui64, kPrivacy, kStableOpaque };

/// One device in the home.
struct DeviceProfile {
  IidMode mode = IidMode::kPrivacy;
  /// For kPrivacy: regeneration interval (RFC 4941 default is a day).
  Hour privacy_regen_hours = 24;
};

/// A plausible household mix: a couple of EUI-64 legacy devices (printers,
/// IoT), several privacy-extension phones/laptops, sometimes a
/// stable-opaque host. Sized 2..8 devices.
std::vector<DeviceProfile> typical_home_mix(net::Rng& rng);

/// One sampled device address.
struct DeviceObservation {
  Hour hour = 0;
  std::uint32_t device = 0;  ///< index into the profile list
  net::IPv6Address addr;
};

/// Derive every device's address over a subscriber's v6 timeline, sampled
/// every `sample_interval` hours. Deterministic in (timeline, profiles,
/// seed).
std::vector<DeviceObservation> simulate_home_devices(
    const SubscriberTimeline& timeline,
    const std::vector<DeviceProfile>& devices, std::uint64_t seed,
    Hour sample_interval = 1);

}  // namespace dynamips::simnet
