#include "simnet/home.h"

#include <algorithm>

namespace dynamips::simnet {

std::vector<DeviceProfile> typical_home_mix(net::Rng& rng) {
  std::vector<DeviceProfile> devices;
  int eui64 = int(rng.uniform(3));              // 0..2 legacy devices
  int privacy = 1 + int(rng.uniform(5));        // 1..5 modern devices
  int opaque = rng.bernoulli(0.3) ? 1 : 0;      // occasional RFC 7217 host
  for (int i = 0; i < eui64; ++i)
    devices.push_back({IidMode::kEui64, 24});
  for (int i = 0; i < privacy; ++i)
    devices.push_back({IidMode::kPrivacy, 24});
  for (int i = 0; i < opaque; ++i)
    devices.push_back({IidMode::kStableOpaque, 24});
  if (devices.empty()) devices.push_back({IidMode::kPrivacy, 24});
  return devices;
}

std::vector<DeviceObservation> simulate_home_devices(
    const SubscriberTimeline& timeline,
    const std::vector<DeviceProfile>& devices, std::uint64_t seed,
    Hour sample_interval) {
  std::vector<DeviceObservation> out;
  if (timeline.v6.empty() || devices.empty() || sample_interval == 0)
    return out;

  // Per-device stable state.
  struct DeviceState {
    std::uint64_t eui64_iid = 0;
    std::uint64_t secret = 0;  // RFC 7217 secret / privacy stream seed
  };
  net::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<DeviceState> state(devices.size());
  for (auto& st : state) {
    st.eui64_iid = net::eui64_iid(net::Mac::random(rng));
    st.secret = rng.next_u64();
  }

  // Privacy IIDs are deterministic per (device, regeneration epoch,
  // network): regenerated on schedule AND on every prefix change (4941 §3.5).
  auto iid_for = [&](std::size_t dev, const Assignment6& seg,
                     Hour h) -> std::uint64_t {
    const DeviceProfile& profile = devices[dev];
    const DeviceState& st = state[dev];
    switch (profile.mode) {
      case IidMode::kEui64:
        return st.eui64_iid;
      case IidMode::kStableOpaque:
        return net::stable_opaque_iid(st.secret, seg.lan64);
      case IidMode::kPrivacy: {
        Hour epoch = profile.privacy_regen_hours
                         ? h / profile.privacy_regen_hours
                         : 0;
        std::uint64_t v = net::stable_opaque_iid(
            st.secret ^ (epoch * 0xd1b54a32d192ed03ull), seg.lan64);
        return v;
      }
    }
    return st.eui64_iid;
  };

  Hour begin = timeline.v6.front().start;
  Hour end = timeline.v6.back().end;
  std::size_t seg_idx = 0;
  for (Hour h = begin; h < end; h += sample_interval) {
    while (seg_idx + 1 < timeline.v6.size() &&
           h >= timeline.v6[seg_idx].end)
      ++seg_idx;
    const Assignment6& seg = timeline.v6[seg_idx];
    if (h < seg.start || h >= seg.end) continue;
    for (std::size_t dev = 0; dev < devices.size(); ++dev) {
      out.push_back({h, std::uint32_t(dev),
                     net::IPv6Address{seg.lan64, iid_for(dev, seg, h)}});
    }
  }
  return out;
}

}  // namespace dynamips::simnet
