// policy.h — address-assignment change policies (§2.2 of the paper).
//
// The paper groups the causes of assignment changes into three classes:
// periodic changes (DHCP lease expiry / RADIUS session timeouts), changes
// due to outages (CPE reboots and ISP-side state loss), and administrative
// changes (renumbering, pool rebalancing). ChangePolicy parameterises all
// three; draw_assignment_duration() composes them into a single duration.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "netaddr/rng.h"
#include "simnet/time.h"

namespace dynamips::simnet {

/// Why an assignment ended — kept on each simulated segment so analyses can
/// be validated against ground truth causes.
enum class ChangeCause {
  kNone,        ///< censored (simulation window ended)
  kLease,       ///< periodic lease/session expiry without renewal
  kOutage,      ///< CPE outage/reboot triggered reassignment
  kAdmin,       ///< ISP-side administrative renumbering
  kCoupled,     ///< v6 change triggered by a coupled v4 change (or vice versa)
  kCpeScramble, ///< CPE re-picked its LAN /64 inside an unchanged delegation
};

/// Parameters governing when a subscriber's assignment changes.
struct ChangePolicy {
  /// Lease/session length in hours; 0 disables periodic changes. RADIUS-style
  /// deployments force a change at every expiry (renew_keep_prob = 0); DHCP
  /// deployments usually renew (renew_keep_prob close to 1), producing
  /// durations at integer multiples of the lease.
  Hour lease_hours = 0;
  /// Probability that a lease expiry renews in place (address kept).
  double renew_keep_prob = 0.0;

  /// Mean hours between ISP-side administrative renumbering events affecting
  /// this subscriber (exponential); 0 disables.
  double mean_admin_hours = 0.0;

  /// CPE outage (power cut, reboot) rate per year; 0 disables.
  double outages_per_year = 0.0;
  /// Probability an outage results in a new assignment (1.0 models RADIUS
  /// ISPs where any reconnect renumbers; small values model DHCP servers
  /// that remember previous assignments).
  double change_on_outage_prob = 0.0;

  /// True when this policy never changes addresses at all.
  bool is_static() const {
    return lease_hours == 0 && mean_admin_hours == 0.0 &&
           (outages_per_year == 0.0 || change_on_outage_prob == 0.0);
  }
};

/// Result of one duration draw.
struct DurationDraw {
  Hour hours;
  ChangeCause cause;
};

/// Draw the duration of one assignment under `policy`. Returns the number of
/// hours until the next change and its cause. For static policies returns
/// {kNoEnd, kNone}.
inline DurationDraw draw_assignment_duration(const ChangePolicy& policy,
                                             net::Rng& rng) {
  Hour best = kNoEnd;
  ChangeCause cause = ChangeCause::kNone;

  if (policy.lease_hours > 0) {
    // Chain of renewals: duration is k * lease where k-1 renewals succeeded.
    Hour k = 1;
    // Cap the chain so a keep-probability of 1.0 degrades to "static".
    while (k < 4096 && rng.bernoulli(policy.renew_keep_prob)) ++k;
    Hour d = k * policy.lease_hours;
    if (k < 4096 && d < best) {
      best = d;
      cause = ChangeCause::kLease;
    }
  }

  if (policy.mean_admin_hours > 0) {
    Hour d = std::max<Hour>(1, Hour(rng.exponential(policy.mean_admin_hours)));
    if (d < best) {
      best = d;
      cause = ChangeCause::kAdmin;
    }
  }

  if (policy.outages_per_year > 0 && policy.change_on_outage_prob > 0) {
    double mean_gap = double(kHoursPerYear) / policy.outages_per_year;
    double t = 0;
    // Walk outages until one triggers a change (bounded for safety).
    for (int i = 0; i < 256; ++i) {
      t += rng.exponential(mean_gap);
      if (rng.bernoulli(policy.change_on_outage_prob)) {
        Hour d = std::max<Hour>(1, Hour(t));
        if (d < best) {
          best = d;
          cause = ChangeCause::kOutage;
        }
        break;
      }
    }
  }

  return {best, cause};
}

/// How a CPE selects the /64 it advertises on the subscriber LAN from the
/// delegated prefix (§5.3).
enum class CpeSubnetMode {
  /// Announce the lowest-numbered /64 (subnet-id bits zero). The common
  /// behaviour, which the trailing-zeros inference relies on.
  kZeroFill,
  /// Scramble the subnet-id bits on every delegation change and occasionally
  /// in between — the documented behaviour of many DTAG-branded CPEs, which
  /// defeats the inference and produces CPL >= 56 pseudo-changes (Fig. 5b).
  kScramble,
  /// Use a fixed non-zero subnet id (e.g. a CPE that numbers LANs from 1).
  kConstantNonZero,
};

/// CPE behaviour parameters.
struct CpePolicy {
  CpeSubnetMode mode = CpeSubnetMode::kZeroFill;
  /// For kScramble: additional spontaneous re-scrambles per year (LAN /64
  /// changes while the ISP-delegated prefix stays put).
  double scrambles_per_year = 0.0;
};

/// Distribution over prefix lengths an ISP delegates to subscribers
/// (e.g. mostly /56 with some /64).
struct DelegationPolicy {
  struct Entry {
    int length;
    double weight;
  };
  std::vector<Entry> entries{{56, 1.0}};

  int draw(net::Rng& rng) const {
    std::vector<double> w;
    w.reserve(entries.size());
    for (const auto& e : entries) w.push_back(e.weight);
    return entries[rng.weighted(w)].length;
  }
};

}  // namespace dynamips::simnet
