// pools.h — spatial structure of ISP address plans (§5 of the paper).
//
// IPv4: subscribers draw addresses from pools fragmented across the ISP's
// BGP prefixes; successive assignments often land in a different /24 and
// frequently in a different BGP prefix (Table 2). The plan is parameterised
// directly by the two stickiness probabilities the analysis measures.
//
// IPv6: the ISP carves each BGP prefix into fixed-size pools (commonly /40,
// §5.2); a subscriber is attached to a small set of "home" pools, and each
// new delegated prefix is drawn from one of them. This produces the paper's
// observations: successive /64s usually share the pool prefix (CPL clusters
// just past the pool length), probes see few unique /40s but many unique
// /48s and /56s (Fig. 8), and v6 changes almost never cross BGP prefixes.
#pragma once

#include <cstdint>
#include <vector>

#include "netaddr/ipv4.h"
#include "netaddr/prefix.h"
#include "netaddr/rng.h"

namespace dynamips::simnet {

/// Draw a uniformly random sub-prefix of `child_len` inside `parent`
/// (bits between the two lengths random, bits below `child_len` zero).
net::Prefix6 random_subprefix(const net::Prefix6& parent, int child_len,
                              net::Rng& rng);

/// Draw a uniformly random host address inside a v4 prefix (avoiding the
/// all-zeros and all-ones host for /24-or-shorter blocks).
net::IPv4Address random_host(const net::Prefix4& block, net::Rng& rng);

/// IPv4 address plan: where new v4 assignments come from.
class V4AddressPlan {
 public:
  /// `p_same24`: probability a reassignment stays in the subscriber's
  /// current /24. `p_same_bgp`: probability a reassignment that leaves the
  /// /24 stays within the current BGP prefix. Both taken directly from the
  /// per-ISP columns of Table 2.
  V4AddressPlan(std::vector<net::Prefix4> bgp_prefixes, double p_same24,
                double p_same_bgp);

  /// First assignment for a new subscriber.
  net::IPv4Address initial(net::Rng& rng) const;

  /// Next assignment after a change, conditioned on the current address.
  net::IPv4Address next(net::IPv4Address current, net::Rng& rng) const;

  const std::vector<net::Prefix4>& bgp_prefixes() const { return bgp_; }

 private:
  std::size_t bgp_index_of(net::IPv4Address a) const;
  net::IPv4Address random_in_bgp(std::size_t idx, net::Rng& rng) const;

  std::vector<net::Prefix4> bgp_;
  double p_same24_;
  double p_same_bgp_;
};

/// The set of pools a particular subscriber's assignments are drawn from.
struct HomePools {
  std::vector<net::Prefix6> pools;   ///< pool prefixes (length = pool_len)
  std::vector<double> weights;       ///< draw weights (primary pool heaviest)
};

/// IPv6 address plan: pool structure and delegated-prefix draws.
class V6AddressPlan {
 public:
  /// `pool_len`: length of the internal pools the ISP carves its space into
  /// (the "/40 boundary" of §5.2). `p_same_bgp`: probability a reassignment
  /// stays within the current BGP prefix (Table 2's v6 column, typically
  /// close to 1). The ISP operates a finite pool universe —
  /// `pools_per_bgp` pools per announcement, shared by its subscribers —
  /// deterministically derived from the announcement bits.
  V6AddressPlan(std::vector<net::Prefix6> bgp_prefixes, int pool_len,
                double p_same_bgp, int pools_per_bgp = 64);

  /// Attach a new subscriber to `count` home pools; the first is primary
  /// and the others share `secondary_weight` of the draw probability.
  HomePools assign_home_pools(int count, double secondary_weight,
                              net::Rng& rng) const;

  /// Draw a fresh delegated prefix of length `deleg_len` for the subscriber;
  /// guaranteed to differ from `current` (retry-based, except in the
  /// degenerate case of a pool with a single delegation).
  net::Prefix6 draw_delegation(const HomePools& home, int deleg_len,
                               const net::Prefix6& current,
                               net::Rng& rng) const;

  int pool_len() const { return pool_len_; }
  const std::vector<net::Prefix6>& bgp_prefixes() const { return bgp_; }
  /// The pool universe of one announcement (for tests/inspection).
  const std::vector<net::Prefix6>& pools_of(std::size_t bgp_idx) const {
    return universe_[bgp_idx];
  }

 private:
  std::vector<net::Prefix6> bgp_;
  int pool_len_;
  double p_same_bgp_;
  std::vector<std::vector<net::Prefix6>> universe_;
};

}  // namespace dynamips::simnet
