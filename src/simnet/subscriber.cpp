#include "simnet/subscriber.h"

#include <algorithm>
#include <utility>

namespace dynamips::simnet {

namespace {

// Stable per-subscriber seed derivation (SplitMix64 over seed and id).
std::uint64_t mix(std::uint64_t seed, std::uint64_t id) {
  return net::mix_seed(seed + 0x9e3779b97f4a7c15ull * (id + 1));
}

}  // namespace

TimelineGenerator::TimelineGenerator(IspProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      plan4_(profile_.bgp4, profile_.p_same24, profile_.p_same_bgp4),
      plan6_(profile_.bgp6, profile_.v6_pool_len, profile_.p_same_bgp6,
             profile_.v6_pools_per_bgp),
      seed_(seed) {}

std::uint64_t TimelineGenerator::lan64_for(const net::Prefix6& delegated,
                                           CpeSubnetMode mode,
                                           std::uint64_t constant_id,
                                           net::Rng& rng) const {
  std::uint64_t base = delegated.address().network64();
  int subnet_bits = 64 - delegated.length();
  if (subnet_bits <= 0) return base;
  std::uint64_t span = subnet_bits >= 64 ? ~0ull : ((1ull << subnet_bits) - 1);
  switch (mode) {
    case CpeSubnetMode::kZeroFill:
      return base;  // announce the lowest-numbered /64
    case CpeSubnetMode::kScramble:
      return base | (rng.next_u64() & span);
    case CpeSubnetMode::kConstantNonZero:
      return base | (std::max<std::uint64_t>(1, constant_id & span));
  }
  return base;
}

SubscriberTimeline TimelineGenerator::generate(std::uint32_t id, Hour start,
                                               Hour end) const {
  net::Rng rng(mix(seed_, id));
  SubscriberTimeline tl;
  tl.subscriber_id = id;
  tl.is_static = rng.bernoulli(profile_.static_share);
  tl.dual_stack = rng.bernoulli(profile_.dualstack_share);
  tl.delegated_len = profile_.delegation.draw(rng);
  // CPE behaviour: a profile-dependent share scrambles subnet bits; a small
  // residual share uses a constant non-zero subnet id (the §5.3 caveat).
  if (rng.bernoulli(profile_.cpe_scramble_share)) {
    tl.cpe_mode = CpeSubnetMode::kScramble;
  } else if (rng.bernoulli(0.03)) {
    tl.cpe_mode = CpeSubnetMode::kConstantNonZero;
  } else {
    tl.cpe_mode = CpeSubnetMode::kZeroFill;
  }
  std::uint64_t constant_id = 1 + rng.uniform(255);
  tl.home = plan6_.assign_home_pools(profile_.home_pool_count,
                                     profile_.home_pool_secondary_weight, rng);

  // ----------------------------------------------------------------- IPv4 --
  bool ds_acts_nds =
      tl.dual_stack && rng.bernoulli(profile_.ds_uses_nds_share);
  bool use_ds_policy = tl.dual_stack && !ds_acts_nds;
  net::IPv4Address addr = plan4_.initial(rng);
  Hour t = start;
  while (t < end) {
    const ChangePolicy& pol4 =
        use_ds_policy ? profile_.v4_ds_at(t) : profile_.v4_nds_at(t);
    DurationDraw d = tl.is_static ? DurationDraw{kNoEnd, ChangeCause::kNone}
                                  : draw_assignment_duration(pol4, rng);
    if (d.hours == kNoEnd || t + d.hours >= end) {
      tl.v4.push_back({t, end, addr, ChangeCause::kNone});
      break;
    }
    Hour change_at = t + d.hours;
    tl.v4.push_back({t, change_at, addr, d.cause});
    addr = plan4_.next(addr, rng);
    t = change_at;
  }

  if (!tl.dual_stack) return tl;

  // ----------------------------------------------------------------- IPv6 --
  // Coupled change instants: v4 changes that drag the v6 assignment along.
  std::vector<Hour> coupled;
  for (std::size_t i = 0; i + 1 < tl.v4.size(); ++i)
    if (rng.bernoulli(profile_.couple_v6_to_v4))
      coupled.push_back(tl.v4[i].end);

  // Merge the coupled instants with the v6 policy's own change process; any
  // change (either kind) restarts the own-process timer, mirroring a DHCPv6
  // server that starts a fresh lease whenever it hands out a new prefix.
  struct Change {
    Hour at;
    ChangeCause cause;
  };
  std::vector<Change> changes;
  auto draw_own = [&](Hour from) -> std::pair<Hour, ChangeCause> {
    if (tl.is_static) return {kNoEnd, ChangeCause::kNone};
    DurationDraw d = draw_assignment_duration(profile_.v6_at(from), rng);
    if (d.hours == kNoEnd) return {kNoEnd, ChangeCause::kNone};
    return {from + d.hours, d.cause};
  };
  auto [next_own, own_cause] = draw_own(start);
  for (Hour c : coupled) {
    if (c >= end) break;
    while (next_own != kNoEnd && next_own < c && next_own < end) {
      changes.push_back({next_own, own_cause});
      std::tie(next_own, own_cause) = draw_own(next_own);
    }
    changes.push_back({c, ChangeCause::kCoupled});
    std::tie(next_own, own_cause) = draw_own(c);
  }
  while (next_own != kNoEnd && next_own < end) {
    changes.push_back({next_own, own_cause});
    std::tie(next_own, own_cause) = draw_own(next_own);
  }

  // CPE-side LAN /64 scrambles inside an unchanged delegation (only when
  // there are free subnet bits to scramble).
  if (tl.cpe_mode == CpeSubnetMode::kScramble && tl.delegated_len < 64 &&
      profile_.scramble_cpe.scrambles_per_year > 0 && !tl.is_static) {
    double mean_gap =
        double(kHoursPerYear) / profile_.scramble_cpe.scrambles_per_year;
    Hour s = start + Hour(rng.exponential(mean_gap));
    while (s < end) {
      changes.push_back({s, ChangeCause::kCpeScramble});
      s += std::max<Hour>(1, Hour(rng.exponential(mean_gap)));
    }
  }

  std::sort(changes.begin(), changes.end(),
            [](const Change& a, const Change& b) { return a.at < b.at; });
  changes.erase(std::unique(changes.begin(), changes.end(),
                            [](const Change& a, const Change& b) {
                              return a.at == b.at;
                            }),
                changes.end());

  // Materialise v6 segments.
  net::Prefix6 deleg =
      plan6_.draw_delegation(tl.home, tl.delegated_len, net::Prefix6{}, rng);
  std::uint64_t lan = lan64_for(deleg, tl.cpe_mode, constant_id, rng);
  Hour seg_start = start;
  for (const Change& ch : changes) {
    if (ch.at <= seg_start || ch.at >= end) continue;
    tl.v6.push_back({seg_start, ch.at, deleg, lan, ch.cause});
    if (ch.cause == ChangeCause::kCpeScramble) {
      // Same delegation, freshly scrambled subnet id.
      std::uint64_t fresh = lan;
      for (int attempt = 0; attempt < 8 && fresh == lan; ++attempt)
        fresh = lan64_for(deleg, CpeSubnetMode::kScramble, constant_id, rng);
      lan = fresh;
    } else {
      deleg = plan6_.draw_delegation(tl.home, tl.delegated_len, deleg, rng);
      lan = lan64_for(deleg, tl.cpe_mode, constant_id, rng);
    }
    seg_start = ch.at;
  }
  tl.v6.push_back({seg_start, end, deleg, lan, ChangeCause::kNone});
  return tl;
}

}  // namespace dynamips::simnet
