// generator.h — synthetic CDN RUM association dataset.
//
// Stands in for the proprietary 32.7-billion-tuple CDN dataset. The
// population combines the Table-1 fixed-line ISPs (shrunk to the pool
// subset the CDN would observe as RUM-active), per-registry generic fixed
// ISPs calibrated to Fig. 3/Fig. 7, and per-registry cellular operators
// (CGNAT egress pools, per-UE /64s, daily renumbering — plus EE Ltd, the
// long-duration mobile outlier the paper singles out).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cdn/rum.h"
#include "obs/metrics.h"
#include "simnet/isp.h"
#include "simnet/subscriber.h"

namespace dynamips::cdn {

struct CdnConfig {
  int days = 150;                 ///< Jan 1 – Jun 1 window of the paper
  double subscriber_scale = 1.0;  ///< multiply per-ISP population sizes
  std::uint64_t seed = 7;
  /// Probability a subscriber produces an association on a given day.
  double daily_activity = 0.6;
  /// Probability an association pairs the v6 side with a v4 address from a
  /// different network (smartphone switching between WiFi and cellular);
  /// removed by the ASN-match filter.
  double cross_network_noise = 0.01;
};

/// One ISP's share of the CDN-visible population.
struct PopulationEntry {
  simnet::IspProfile isp;
  int subscribers = 0;
};

/// The default population: Table-1 ISPs + per-registry fixed and mobile
/// operators. Counts are pre-scale baselines; pass the same
/// `subscriber_scale` as CdnConfig so fixed-line v4 pools are sized to the
/// ~180 RUM-active subscribers per /24 the paper observes (Fig. 4b) at any
/// scale.
std::vector<PopulationEntry> default_cdn_population(
    double subscriber_scale = 1.0);

/// Restrict an ISP's v4 announcements to the leading /`len` of each block —
/// the RUM-active pool subset — so per-/24 degrees match CDN visibility.
simnet::IspProfile shrink_v4_for_cdn(simnet::IspProfile isp, int len);

/// Deterministic association-log generator. Logs are produced one ISP at a
/// time so the multi-billion-tuple scale of the real dataset can be
/// mirrored by streaming aggregation.
///
/// Thread safety: after construction the simulator is immutable, and each
/// entry's log draws from its own RNG stream derived via net::mix_seed from
/// (seed, entry index) — `generate` may be called concurrently from any
/// number of shards for any index partitioning.
class CdnSimulator {
 public:
  CdnSimulator(std::vector<PopulationEntry> population, CdnConfig config);

  std::size_t entry_count() const { return population_.size(); }
  const PopulationEntry& entry(std::size_t idx) const {
    return population_[idx];
  }
  const CdnConfig& config() const { return config_; }

  /// All association records of one population entry over the window,
  /// including cross-network noise tuples (asn4 != asn6).
  AssociationLog generate(std::size_t entry_idx) const;

  /// ASNs of the cellular operators in this population — the stand-in for
  /// the Rula et al. cellular-prefix identification the paper uses.
  std::unordered_set<bgp::Asn> mobile_asns() const;

  /// Export the population shape as "cdn.gen.*" counters (entries, mobile
  /// entries, effective post-scale subscribers). Thread-invariant.
  void publish_metrics(obs::MetricsSink& sink) const;

 private:
  std::vector<PopulationEntry> population_;
  CdnConfig config_;
  std::vector<simnet::TimelineGenerator> generators_;
};

}  // namespace dynamips::cdn
