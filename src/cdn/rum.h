// rum.h — CDN Real-User-Monitoring association records (§4.1).
//
// The CDN observes dual-stacked clients whose page fetch and RUM beacon use
// different IP protocols, yielding an instantaneous association between the
// client's IPv4 and IPv6 addresses. The dataset is aggregated to an
// (IPv4 /24, IPv6 /64, date) tuple; the CDN's BGP feed attributes each side
// to an origin AS, and associations whose two ASNs differ are discarded
// during pre-processing (multi-homing and WiFi/cellular switching noise).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/rib.h"
#include "netaddr/prefix.h"

namespace dynamips::cdn {

/// One observed IPv4/IPv6 association.
struct AssociationRecord {
  std::uint32_t day = 0;       ///< day index within the collection window
  net::Prefix4 v4_24;          ///< client IPv4 aggregated to /24
  net::Prefix6 v6_64;          ///< client IPv6 aggregated to /64
  bgp::Asn asn4 = 0;           ///< origin AS of the v4 side (BGP feed)
  bgp::Asn asn6 = 0;           ///< origin AS of the v6 side
  std::uint32_t subscriber = 0;  ///< ground truth (not available to analyses
                                 ///< mirroring the paper; used in tests)
};

/// Per-ISP batch of association records, sorted by day.
struct AssociationLog {
  bgp::Asn asn = 0;
  bool mobile = false;                  ///< ground-truth access type
  bgp::Registry registry{};
  std::vector<AssociationRecord> records;
};

}  // namespace dynamips::cdn
