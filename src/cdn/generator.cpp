#include "cdn/generator.h"

#include <algorithm>
#include <cassert>

namespace dynamips::cdn {

using bgp::Registry;
using net::Prefix4;
using net::Prefix6;
using net::Rng;
using simnet::Hour;
using simnet::IspProfile;
using simnet::kHoursPerDay;

namespace {

std::uint64_t mix(std::uint64_t seed, std::uint64_t id) {
  return net::mix_seed(seed ^ (0xda942042e4dd58b5ull * (id + 0x9dull)));
}

template <typename Seg>
const Seg* segment_at(const std::vector<Seg>& segs, Hour h) {
  auto it = std::upper_bound(
      segs.begin(), segs.end(), h,
      [](Hour hh, const Seg& s) { return hh < s.start; });
  if (it == segs.begin()) return nullptr;
  --it;
  return h < it->end ? &*it : nullptr;
}

// Generic fixed-line ISP for a registry, calibrated to the Fig. 3 duration
// boxes and the Fig. 7 delegated-length mixes.
IspProfile registry_fixed(const char* name, bgp::Asn asn, Registry reg,
                          const char* v4block, const char* v6block,
                          double static_share, double mean_admin_hours,
                          std::vector<simnet::DelegationPolicy::Entry> mix) {
  IspProfile p;
  p.name = name;
  p.asn = asn;
  p.registry = reg;
  p.bgp4 = {*Prefix4::parse(v4block)};
  p.bgp6 = {*Prefix6::parse(v6block)};
  simnet::ChangePolicy pol{.lease_hours = 0, .renew_keep_prob = 0,
                           .mean_admin_hours = mean_admin_hours,
                           .outages_per_year = 3,
                           .change_on_outage_prob = 0.3};
  p.v4_nds = pol;
  p.v4_ds = pol;
  p.v6 = pol;
  p.dualstack_share = 1.0;  // CDN associations only exist for dual-stack
  p.static_share = static_share;
  p.couple_v6_to_v4 = 0.8;  // association breaks when either side changes
  p.p_same24 = 0.3;
  p.p_same_bgp4 = 1.0;
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 1.0;
  p.home_pool_count = 1;
  p.delegation.entries = std::move(mix);
  return p;
}

// Cellular operator: CGNAT egress /24s on the v4 side, per-UE /64 with
// (typically) daily renumbering on the v6 side.
IspProfile registry_mobile(const char* name, bgp::Asn asn, Registry reg,
                           const char* v4block, const char* v6block,
                           double keep_prob) {
  IspProfile p;
  p.name = name;
  p.asn = asn;
  p.registry = reg;
  p.mobile = true;
  p.bgp4 = {*Prefix4::parse(v4block)};  // small egress pool (few /24s)
  p.bgp6 = {*Prefix6::parse(v6block)};
  simnet::ChangePolicy daily{.lease_hours = 24, .renew_keep_prob = keep_prob,
                             .mean_admin_hours = 0, .outages_per_year = 12,
                             .change_on_outage_prob = 0.9};
  p.v4_nds = daily;
  p.v4_ds = daily;
  p.v6 = daily;
  p.dualstack_share = 1.0;
  p.static_share = 0.02;
  p.couple_v6_to_v4 = 0.75;  // most PDP teardowns renumber both sides
  p.p_same24 = 0.3;
  p.p_same_bgp4 = 1.0;
  p.v6_pool_len = 40;
  p.p_same_bgp6 = 1.0;
  p.home_pool_count = 1;
  p.delegation.entries = {{64, 1.0}};  // §5.3: mobile UEs get /64s
  return p;
}

}  // namespace

IspProfile shrink_v4_for_cdn(IspProfile isp, int len) {
  for (auto& p : isp.bgp4)
    if (p.length() < len) p = Prefix4{p.address(), len};
  return isp;
}

namespace {

// Block length so that `subscribers` spread over the resulting /24s at a
// density near the paper's ~180 RUM-active addresses per /24 (Fig. 4b).
int v4_block_len_for(double subscribers, int announcements,
                     double density_target) {
  double per_ann = subscribers / double(announcements);
  int n24 = 1;
  while (n24 * 2 <= int(per_ann / density_target + 0.5)) n24 *= 2;
  int len = 24;
  for (int b = n24; b > 1; b /= 2) --len;
  return len < 16 ? 16 : len;
}

}  // namespace

std::vector<PopulationEntry> default_cdn_population(double subscriber_scale) {
  std::vector<PopulationEntry> pop;

  // Table-1 fixed ISPs, shrunk to the pool subset the CDN would observe as
  // RUM-active, sized to realistic per-/24 densities.
  struct Pick {
    const char* name;
    int subscribers;
  };
  for (Pick pick : std::initializer_list<Pick>{{"DTAG", 2000},
                                               {"Orange", 2500},
                                               {"Comcast", 4000},
                                               {"LGI", 2500},
                                               {"BT", 2500},
                                               {"Proximus", 1500}}) {
    auto isp = simnet::find_isp(pick.name);
    assert(isp.has_value());
    if (pick.name == std::string("DTAG")) {
      // The CDN's DTAG population is broad: dual-stack households on the
      // ~weekly track dominate, unlike the Atlas probe sample (Fig. 2's
      // DTAG median is about one week).
      isp->ds_uses_nds_share = 0.0;
      isp->v4_ds.renew_keep_prob = 0.85;
      isp->v6 = {.lease_hours = 0, .renew_keep_prob = 0,
                 .mean_admin_hours = 8000, .outages_per_year = 4,
                 .change_on_outage_prob = 0.3};
    }
    // Renumbering ISPs spread subscribers across more /24s, so their
    // per-/24 subscriber density is lower at equal degree.
    int len = v4_block_len_for(double(pick.subscribers) * subscriber_scale,
                               int(isp->bgp4.size()), 30.0);
    pop.push_back({shrink_v4_for_cdn(*isp, len), pick.subscribers});
  }

  // Per-registry generic fixed populations (Fig. 3 / Fig. 7 calibration).
  using E = simnet::DelegationPolicy::Entry;
  struct FixedSpec {
    const char* name;
    bgp::Asn asn;
    Registry reg;
    const char* v4;
    const char* v6;
    double static_share;
    double admin;
    std::vector<E> mix;
    int subscribers;
  };
  const FixedSpec fixed_specs[] = {
      {"ARIN-fixed", 70100, Registry::kArin, "173.16.0.0/16",
       "2600:4000::/24", 0.60, 10000,
       {E{60, 0.30}, E{56, 0.27}, E{64, 0.41}, E{48, 0.02}}, 20000},
      {"RIPE-fixed", 70200, Registry::kRipe, "151.16.0.0/16",
       "2a0e:4000::/24", 0.45, 6500,
       {E{56, 0.62}, E{60, 0.10}, E{48, 0.06}, E{64, 0.22}}, 20000},
      {"APNIC-fixed", 70300, Registry::kApnic, "118.16.0.0/16",
       "2403:4000::/24", 0.45, 6000,
       {E{56, 0.30}, E{60, 0.14}, E{48, 0.10}, E{64, 0.46}}, 18000},
      {"LACNIC-fixed", 70400, Registry::kLacnic, "186.16.0.0/16",
       "2800:4000::/24", 0.40, 5500,
       {E{64, 0.85}, E{56, 0.10}, E{60, 0.05}}, 14000},
      {"AFRINIC-fixed", 70500, Registry::kAfrinic, "105.16.0.0/16",
       "2c0f:4000::/24", 0.45, 6000,
       {E{56, 0.65}, E{60, 0.10}, E{48, 0.08}, E{64, 0.17}}, 10000},
  };
  for (const auto& spec : fixed_specs) {
    IspProfile isp = registry_fixed(spec.name, spec.asn, spec.reg, spec.v4,
                                    spec.v6, spec.static_share, spec.admin,
                                    spec.mix);
    int len = v4_block_len_for(double(spec.subscribers) * subscriber_scale,
                               int(isp.bgp4.size()), 90.0);
    pop.push_back({shrink_v4_for_cdn(std::move(isp), len),
                   spec.subscribers});
  }

  // Cellular operators: one per registry plus EE Ltd, the RIPE outlier with
  // address durations reaching ~50 days (§4.2).
  pop.push_back({registry_mobile("ARIN-mobile", 71100, Registry::kArin,
                                 "172.56.0.0/22", "2607:fb90::/28", 0.22),
                 6000});
  pop.push_back({registry_mobile("RIPE-mobile", 71200, Registry::kRipe,
                                 "92.40.0.0/22", "2a01:4c80::/28", 0.30),
                 1000});
  // EE Ltd: the RIPE mobile outlier with durations reaching ~50 days; its
  // weight is what drags the RIPE-mobile 75th percentile to ~22 days.
  pop.push_back({registry_mobile("EE Ltd", 12576, Registry::kRipe,
                                 "31.64.0.0/22", "2a00:23a0::/28", 0.97),
                 20000});
  pop.push_back({registry_mobile("APNIC-mobile", 71300, Registry::kApnic,
                                 "110.224.0.0/22", "2409:4000::/28", 0.20),
                 6000});
  pop.push_back({registry_mobile("LACNIC-mobile", 71400, Registry::kLacnic,
                                 "187.228.0.0/22", "2806:2000::/28", 0.18),
                 5000});
  pop.push_back({registry_mobile("AFRINIC-mobile", 71500, Registry::kAfrinic,
                                 "197.210.0.0/22", "2c0f:f000::/28", 0.20),
                 4000});
  return pop;
}

CdnSimulator::CdnSimulator(std::vector<PopulationEntry> population,
                           CdnConfig config)
    : population_(std::move(population)), config_(config) {
  generators_.reserve(population_.size());
  for (std::size_t i = 0; i < population_.size(); ++i)
    generators_.emplace_back(population_[i].isp,
                             config_.seed * 2654435761ull + i);
}

std::unordered_set<bgp::Asn> CdnSimulator::mobile_asns() const {
  std::unordered_set<bgp::Asn> out;
  for (const auto& e : population_)
    if (e.isp.mobile) out.insert(e.isp.asn);
  return out;
}

void CdnSimulator::publish_metrics(obs::MetricsSink& sink) const {
  std::uint64_t mobile_entries = 0, subscribers = 0;
  for (const auto& e : population_) {
    if (e.isp.mobile) ++mobile_entries;
    subscribers += std::uint64_t(std::max(
        1, int(double(e.subscribers) * config_.subscriber_scale)));
  }
  sink.counter("cdn.gen.population_entries").add(population_.size());
  sink.counter("cdn.gen.mobile_entries").add(mobile_entries);
  sink.counter("cdn.gen.subscribers").add(subscribers);
}

AssociationLog CdnSimulator::generate(std::size_t entry_idx) const {
  const PopulationEntry& entry = population_[entry_idx];
  AssociationLog log;
  log.asn = entry.isp.asn;
  log.mobile = entry.isp.mobile;
  log.registry = entry.isp.registry;

  int subscribers =
      std::max(1, int(double(entry.subscribers) * config_.subscriber_scale));
  Hour window = Hour(config_.days) * kHoursPerDay;

  // Noise source: pair with a mobile entry when available (phones switching
  // from WiFi to cellular mid-visit), else with the next entry.
  std::size_t noise_idx = entry_idx;
  for (std::size_t i = 0; i < population_.size(); ++i)
    if (i != entry_idx && population_[i].isp.mobile) noise_idx = i;
  if (noise_idx == entry_idx && population_.size() > 1)
    noise_idx = (entry_idx + 1) % population_.size();

  Rng rng(mix(config_.seed, 0xc0ffee + entry_idx));
  for (int sub = 0; sub < subscribers; ++sub) {
    auto tl = generators_[entry_idx].generate(std::uint32_t(sub), 0, window);
    if (!tl.dual_stack) continue;
    simnet::SubscriberTimeline noise_tl;
    bool have_noise = false;
    // Mobile devices touch CDN-hosted content several times a day, which
    // is what lets a /64 witness a mid-day CGNAT egress change (§4.3's
    // 13% of mobile /64s with more than one /24).
    const int samples_per_day = entry.isp.mobile ? 3 : 1;
    for (int day = 0; day < config_.days; ++day) {
      for (int slot = 0; slot < samples_per_day; ++slot) {
      if (!rng.bernoulli(config_.daily_activity)) continue;
      Hour slot_len = kHoursPerDay / Hour(samples_per_day);
      Hour h = Hour(day) * kHoursPerDay + Hour(slot) * slot_len +
               rng.uniform(slot_len);
      const auto* s6 = segment_at(tl.v6, h);
      if (!s6) continue;

      AssociationRecord rec;
      rec.day = std::uint32_t(day);
      rec.subscriber = std::uint32_t(sub);
      rec.v6_64 =
          Prefix6{net::IPv6Address{s6->lan64, 0}, 64};
      rec.asn6 = entry.isp.asn;

      if (noise_idx != entry_idx &&
          rng.bernoulli(config_.cross_network_noise)) {
        // v4 observed via another network: ASN mismatch, filtered later.
        if (!have_noise) {
          noise_tl = generators_[noise_idx].generate(
              std::uint32_t(sub) ^ 0x77770000u, 0, window);
          have_noise = true;
        }
        const auto* n4 = segment_at(noise_tl.v4, h);
        if (!n4) continue;
        rec.v4_24 = net::slash24_of(n4->addr);
        rec.asn4 = population_[noise_idx].isp.asn;
      } else {
        const auto* s4 = segment_at(tl.v4, h);
        if (!s4) continue;
        rec.v4_24 = net::slash24_of(s4->addr);
        rec.asn4 = entry.isp.asn;
      }
      log.records.push_back(rec);
      }
    }
  }
  std::sort(log.records.begin(), log.records.end(),
            [](const AssociationRecord& a, const AssociationRecord& b) {
              return a.day < b.day;
            });
  return log;
}

}  // namespace dynamips::cdn
