// echo.h — RIPE Atlas "IP echo" measurement records (§3.1).
//
// Every hour a probe performs an HTTP GET against an echo server which
// returns the client's publicly visible address (X-Client-IP). The probe
// also records the local source address it used (src_addr): private RFC 1918
// space behind a v4 NAT, and (normally) the same global address as
// X-Client-IP in v6. The sanitizer keys several filters off the relation
// between the two fields.
#pragma once

#include <cstdint>
#include <vector>

#include "core/intern.h"
#include "netaddr/ipv4.h"
#include "netaddr/ipv6.h"
#include "simnet/time.h"

namespace dynamips::atlas {

using simnet::Hour;

enum class Family : std::uint8_t { kV4, kV6 };

/// One IP-echo measurement.
struct EchoRecord {
  std::uint32_t probe_id = 0;
  Hour hour = 0;
  Family family = Family::kV4;
  // v4 fields (valid when family == kV4)
  net::IPv4Address x_client_ip4;
  net::IPv4Address src_addr4;
  // v6 fields (valid when family == kV6)
  net::IPv6Address x_client_ip6;
  net::IPv6Address src_addr6;
};

/// Probe metadata: the user-supplied tags the sanitizer screens
/// ("datacentre", "core", "multihomed", "system-anchor"). Tags are
/// interned through core::tag_pool(), so a probe carries dense ids
/// instead of heap strings.
struct ProbeMeta {
  std::uint32_t probe_id = 0;
  std::vector<core::TagId> tags;
};

/// All measurements of one probe, sorted by hour (records of both families
/// at the same hour appear v4-first).
struct ProbeSeries {
  ProbeMeta meta;
  std::vector<EchoRecord> records;
};

/// The RIPE NCC address probes report before deployment; appears at the
/// head of many probes' histories and must be filtered (Appendix A.1).
net::IPv4Address ripe_test_address();

}  // namespace dynamips::atlas
