// generator.h — synthetic RIPE Atlas probe population and IP-echo dataset.
//
// This is the stand-in for the raw Atlas "IP echo" measurements (public
// measurement ids 12027/13027). The generator deploys probes into the ISP
// profiles, samples their subscriber timelines hourly, and injects the
// anomaly classes the paper's Appendix A.1 sanitizes: short-lived probes,
// multihomed probes that alternate between two upstreams, probes whose
// owner switched ISP mid-deployment, probes with disqualifying tags, probes
// not behind a typical NAT, and the RIPE test-address artifact.
#pragma once

#include <cstdint>
#include <vector>

#include "atlas/echo.h"
#include "netaddr/rng.h"
#include "obs/metrics.h"
#include "simnet/isp.h"
#include "simnet/subscriber.h"

namespace dynamips::atlas {

/// What kind of deployment a probe has; ground truth for sanitizer tests.
enum class ProbeRole : std::uint8_t {
  kNormal,      ///< typical residential deployment
  kShortLived,  ///< observed for < 1 month (filtered by duration rule)
  kMultihomed,  ///< alternates between two upstream ISPs (filtered)
  kAsSwitch,    ///< moved to a different ISP mid-life (split into virtuals)
  kBadTag,      ///< tagged datacentre/core/system-anchor (filtered)
  kPublicSrc,   ///< v4 src_addr is public, not RFC 1918 (filtered)
};

struct AtlasConfig {
  Hour window_hours = 30000;    ///< observation window (~3.4 years)
  double probe_scale = 1.0;     ///< multiply Table-1 probe counts
  std::uint64_t seed = 1;
  double short_lived_share = 0.08;
  double multihomed_share = 0.03;
  double as_switch_share = 0.04;
  double bad_tag_share = 0.02;
  double public_src_share = 0.02;
  double test_addr_share = 0.25;  ///< probes whose history starts with the
                                  ///< RIPE test address
  double hourly_presence = 0.97;  ///< per-hour measurement success rate
  /// Share of probes reporting a stable EUI-64 IID (Atlas probes are
  /// intended to be stable measurement targets); the rest rotate privacy
  /// IIDs daily, exercising the §2.3 tracking analyses.
  double eui64_share = 0.85;
};

/// Ground-truth description of one deployed probe.
struct ProbeInfo {
  std::uint32_t probe_id = 0;
  std::size_t isp_index = 0;        ///< index into isps()
  std::size_t second_isp_index = 0; ///< for multihomed / AS-switch probes
  ProbeRole role = ProbeRole::kNormal;
  Hour join = 0;
  Hour leave = 0;
  Hour switch_hour = 0;             ///< for kAsSwitch
  bool starts_with_test_addr = false;
  bool privacy_iid = false;         ///< rotates RFC 4941 IIDs daily
  std::uint64_t probe_iid = 0;      ///< stable EUI-64 IID (when !privacy_iid)
};

/// Deterministic Atlas dataset generator. Per-probe output depends only on
/// (config, isps, probe index), so probes can be generated and analyzed one
/// at a time without materialising the whole dataset.
///
/// Thread safety: after construction the simulator is immutable, and every
/// probe draws from its own RNG stream derived via net::mix_seed from
/// (seed, probe_id) — `series_for` / `timeline_for` may be called
/// concurrently from any number of shards for any index partitioning.
class AtlasSimulator {
 public:
  AtlasSimulator(std::vector<simnet::IspProfile> isps, AtlasConfig config);

  std::size_t probe_count() const { return probes_.size(); }
  const ProbeInfo& probe(std::size_t idx) const { return probes_[idx]; }
  const std::vector<simnet::IspProfile>& isps() const { return isps_; }
  const AtlasConfig& config() const { return config_; }

  /// Generate the full hourly measurement series of one probe.
  ProbeSeries series_for(std::size_t idx) const;

  /// Ground-truth subscriber timeline backing a probe (its primary ISP).
  simnet::SubscriberTimeline timeline_for(std::size_t idx) const;

  /// Export the deployed population as "atlas.gen.*" counters (per-role
  /// anomaly counts, privacy-IID and test-address shares), so a metrics
  /// document shows what the generator injected next to what the
  /// sanitizer filtered. Pure function of the config — thread-invariant.
  void publish_metrics(obs::MetricsSink& sink) const;

 private:
  ProbeSeries normal_series(const ProbeInfo& info) const;
  ProbeSeries multihomed_series(const ProbeInfo& info) const;
  ProbeSeries as_switch_series(const ProbeInfo& info) const;
  std::uint64_t iid_at(const ProbeInfo& info, Hour h) const;
  void emit_hours(const ProbeInfo& info,
                  const simnet::SubscriberTimeline& tl, Hour from, Hour to,
                  bool test_addr_head, net::Rng& rng,
                  std::vector<EchoRecord>& out) const;

  std::vector<simnet::IspProfile> isps_;
  AtlasConfig config_;
  std::vector<ProbeInfo> probes_;
  std::vector<simnet::TimelineGenerator> generators_;
};

}  // namespace dynamips::atlas
