#include "atlas/generator.h"

#include <algorithm>
#include <cassert>

#include "netaddr/iid.h"

namespace dynamips::atlas {

using net::IPv4Address;
using net::IPv6Address;
using net::Rng;
using simnet::Assignment4;
using simnet::Assignment6;
using simnet::SubscriberTimeline;

net::IPv4Address ripe_test_address() {
  return *IPv4Address::parse("193.0.0.78");
}

namespace {

std::uint64_t mix(std::uint64_t seed, std::uint64_t id) {
  return net::mix_seed(seed ^ (0x9e3779b97f4a7c15ull * (id + 0x51ull)));
}

// Find the assignment active at hour h (segments are sorted, contiguous).
template <typename Seg>
const Seg* segment_at(const std::vector<Seg>& segs, simnet::Hour h) {
  auto it = std::upper_bound(
      segs.begin(), segs.end(), h,
      [](simnet::Hour hh, const Seg& s) { return hh < s.start; });
  if (it == segs.begin()) return nullptr;
  --it;
  return h < it->end ? &*it : nullptr;
}

}  // namespace

AtlasSimulator::AtlasSimulator(std::vector<simnet::IspProfile> isps,
                               AtlasConfig config)
    : isps_(std::move(isps)), config_(config) {
  assert(!isps_.empty());
  generators_.reserve(isps_.size());
  for (std::size_t i = 0; i < isps_.size(); ++i)
    generators_.emplace_back(isps_[i], config_.seed * 1315423911ull + i);

  // Deploy probes: Table-1 counts per ISP, scaled.
  std::uint32_t next_id = 10000;
  Rng rng(mix(config_.seed, 0xa71a5));
  for (std::size_t isp_idx = 0; isp_idx < isps_.size(); ++isp_idx) {
    int count = std::max(
        1, int(double(isps_[isp_idx].atlas_probes) * config_.probe_scale));
    for (int k = 0; k < count; ++k) {
      ProbeInfo info;
      info.probe_id = next_id++;
      info.isp_index = isp_idx;
      info.second_isp_index = isp_idx;
      info.privacy_iid = !rng.bernoulli(config_.eui64_share);
      info.probe_iid = net::eui64_iid(net::Mac::random(rng));

      // Role assignment: consume shares of the unit interval in order.
      double roll = rng.uniform_real();
      auto take = [&roll](double share) {
        if (roll < share) return true;
        roll -= share;
        return false;
      };
      if (take(config_.short_lived_share)) {
        info.role = ProbeRole::kShortLived;
      } else if (take(config_.multihomed_share)) {
        info.role = ProbeRole::kMultihomed;
      } else if (take(config_.as_switch_share)) {
        info.role = ProbeRole::kAsSwitch;
      } else if (take(config_.bad_tag_share)) {
        info.role = ProbeRole::kBadTag;
      } else if (take(config_.public_src_share)) {
        info.role = ProbeRole::kPublicSrc;
      } else {
        info.role = ProbeRole::kNormal;
      }
      if (info.role == ProbeRole::kMultihomed ||
          info.role == ProbeRole::kAsSwitch) {
        if (isps_.size() > 1) {
          std::size_t other = std::size_t(rng.uniform(isps_.size() - 1));
          if (other >= isp_idx) ++other;
          info.second_isp_index = other;
        } else {
          info.role = ProbeRole::kNormal;
        }
      }

      // Deployment window.
      Hour w = config_.window_hours;
      if (info.role == ProbeRole::kShortLived) {
        info.join = Hour(rng.uniform(w > 800 ? w - 800 : 1));
        info.leave = info.join + 24 + Hour(rng.uniform(24 * 29));  // < 1 month
      } else {
        info.join = Hour(rng.uniform(w / 2));
        // Most probes stay to the end; some leave earlier.
        if (rng.bernoulli(0.7)) {
          info.leave = w;
        } else {
          Hour min_life = 24 * 40;
          Hour span = w - info.join;
          info.leave =
              info.join +
              std::max<Hour>(min_life, Hour(rng.uniform(span > 0 ? span : 1)));
          info.leave = std::min(info.leave, w);
        }
      }
      if (info.role == ProbeRole::kAsSwitch) {
        Hour life = info.leave - info.join;
        info.switch_hour = info.join + life / 4 + Hour(rng.uniform(life / 2));
      }
      info.starts_with_test_addr = rng.bernoulli(config_.test_addr_share);
      probes_.push_back(info);
    }
  }
}

SubscriberTimeline AtlasSimulator::timeline_for(std::size_t idx) const {
  const ProbeInfo& info = probes_[idx];
  return generators_[info.isp_index].generate(info.probe_id, info.join,
                                              info.leave);
}

void AtlasSimulator::publish_metrics(obs::MetricsSink& sink) const {
  std::uint64_t by_role[6] = {};
  std::uint64_t privacy = 0, test_addr = 0;
  for (const ProbeInfo& info : probes_) {
    ++by_role[std::size_t(info.role)];
    if (info.privacy_iid) ++privacy;
    if (info.starts_with_test_addr) ++test_addr;
  }
  sink.counter("atlas.gen.probes").add(probes_.size());
  sink.counter("atlas.gen.role_normal")
      .add(by_role[std::size_t(ProbeRole::kNormal)]);
  sink.counter("atlas.gen.role_short_lived")
      .add(by_role[std::size_t(ProbeRole::kShortLived)]);
  sink.counter("atlas.gen.role_multihomed")
      .add(by_role[std::size_t(ProbeRole::kMultihomed)]);
  sink.counter("atlas.gen.role_as_switch")
      .add(by_role[std::size_t(ProbeRole::kAsSwitch)]);
  sink.counter("atlas.gen.role_bad_tag")
      .add(by_role[std::size_t(ProbeRole::kBadTag)]);
  sink.counter("atlas.gen.role_public_src")
      .add(by_role[std::size_t(ProbeRole::kPublicSrc)]);
  sink.counter("atlas.gen.privacy_iid_probes").add(privacy);
  sink.counter("atlas.gen.test_addr_probes").add(test_addr);
}

ProbeSeries AtlasSimulator::series_for(std::size_t idx) const {
  const ProbeInfo& info = probes_[idx];
  ProbeSeries series;
  switch (info.role) {
    case ProbeRole::kMultihomed:
      series = multihomed_series(info);
      break;
    case ProbeRole::kAsSwitch:
      series = as_switch_series(info);
      break;
    default:
      series = normal_series(info);
      break;
  }
  series.meta.probe_id = info.probe_id;
  static const core::TagId kHome = core::tag_pool().intern("home");
  series.meta.tags = {kHome};
  if (info.role == ProbeRole::kBadTag) {
    static const core::TagId kBad[] = {
        core::tag_pool().intern("datacentre"),
        core::tag_pool().intern("core"),
        core::tag_pool().intern("system-anchor"),
        core::tag_pool().intern("multihomed")};
    series.meta.tags.push_back(kBad[info.probe_id % 4]);
  }
  return series;
}

void AtlasSimulator::emit_hours(const ProbeInfo& info,
                                const SubscriberTimeline& tl, Hour from,
                                Hour to, bool test_addr_head, Rng& rng,
                                std::vector<EchoRecord>& out) const {
  // Private-side address of the probe behind the CPE NAT.
  IPv4Address private_src = IPv4Address::from_octets(
      192, 168, 1, std::uint8_t(2 + info.probe_id % 250));
  bool public_src = info.role == ProbeRole::kPublicSrc;

  for (Hour h = from; h < to; ++h) {
    if (!rng.bernoulli(config_.hourly_presence)) continue;
    const Assignment4* s4 = segment_at(tl.v4, h);
    if (s4) {
      EchoRecord r;
      r.probe_id = info.probe_id;
      r.hour = h;
      r.family = Family::kV4;
      r.x_client_ip4 =
          (test_addr_head && h < from + 3) ? ripe_test_address() : s4->addr;
      r.src_addr4 = public_src ? r.x_client_ip4 : private_src;
      out.push_back(r);
    }
    if (tl.dual_stack) {
      const Assignment6* s6 = segment_at(tl.v6, h);
      if (s6) {
        EchoRecord r;
        r.probe_id = info.probe_id;
        r.hour = h;
        r.family = Family::kV6;
        r.x_client_ip6 = IPv6Address{s6->lan64, iid_at(info, h)};
        r.src_addr6 = r.x_client_ip6;
        out.push_back(r);
      }
    }
  }
}

std::uint64_t AtlasSimulator::iid_at(const ProbeInfo& info, Hour h) const {
  if (!info.privacy_iid) return info.probe_iid;
  // RFC 4941 temporary IID, rotated daily: deterministic per (probe, day).
  return net::stable_opaque_iid(info.probe_iid ^ config_.seed,
                                simnet::day_of(h));
}

ProbeSeries AtlasSimulator::normal_series(const ProbeInfo& info) const {
  ProbeSeries s;
  SubscriberTimeline tl =
      generators_[info.isp_index].generate(info.probe_id, info.join,
                                           info.leave);
  Rng rng(mix(config_.seed, info.probe_id));
  emit_hours(info, tl, info.join, info.leave, info.starts_with_test_addr, rng,
             s.records);
  return s;
}

ProbeSeries AtlasSimulator::multihomed_series(const ProbeInfo& info) const {
  // Two concurrent upstreams; each echo goes out via a random one, so the
  // observed address sequence alternates between two ASes.
  ProbeSeries s;
  SubscriberTimeline a = generators_[info.isp_index].generate(
      info.probe_id, info.join, info.leave);
  SubscriberTimeline b = generators_[info.second_isp_index].generate(
      info.probe_id ^ 0x5a5a, info.join, info.leave);
  Rng rng(mix(config_.seed, info.probe_id));
  for (Hour h = info.join; h < info.leave; ++h) {
    if (!rng.bernoulli(config_.hourly_presence)) continue;
    const SubscriberTimeline& tl = rng.bernoulli(0.5) ? a : b;
    const Assignment4* s4 = segment_at(tl.v4, h);
    if (s4) {
      EchoRecord r;
      r.probe_id = info.probe_id;
      r.hour = h;
      r.family = Family::kV4;
      r.x_client_ip4 = s4->addr;
      r.src_addr4 = IPv4Address::from_octets(
          192, 168, 1, std::uint8_t(2 + info.probe_id % 250));
      s.records.push_back(r);
    }
    if (tl.dual_stack) {
      const Assignment6* s6 = segment_at(tl.v6, h);
      if (s6) {
        EchoRecord r;
        r.probe_id = info.probe_id;
        r.hour = h;
        r.family = Family::kV6;
        r.x_client_ip6 = IPv6Address{s6->lan64, iid_at(info, h)};
        r.src_addr6 = r.x_client_ip6;
        s.records.push_back(r);
      }
    }
  }
  return s;
}

ProbeSeries AtlasSimulator::as_switch_series(const ProbeInfo& info) const {
  // Owner changed ISP at switch_hour: one timeline before, another after.
  ProbeSeries s;
  SubscriberTimeline a = generators_[info.isp_index].generate(
      info.probe_id, info.join, info.switch_hour);
  SubscriberTimeline b = generators_[info.second_isp_index].generate(
      info.probe_id ^ 0xa5a5, info.switch_hour, info.leave);
  Rng rng(mix(config_.seed, info.probe_id));
  emit_hours(info, a, info.join, info.switch_hour,
             info.starts_with_test_addr, rng, s.records);
  emit_hours(info, b, info.switch_hour, info.leave, false, rng, s.records);
  return s;
}

}  // namespace dynamips::atlas
