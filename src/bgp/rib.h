// rib.h — a routing-information-base substrate standing in for the
// RouteViews pfx2as dataset the paper uses to map addresses to origin ASes
// and BGP prefixes (Appendix A.1, Table 2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netaddr/ipv4.h"
#include "netaddr/ipv6.h"
#include "netaddr/prefix.h"
#include "rtrie/prefix_trie.h"

namespace dynamips::bgp {

/// Autonomous-system number.
using Asn = std::uint32_t;

/// Regional Internet Registry attribution, used by the CDN analyses
/// (Figs. 3 and 7) to group address space by geography.
enum class Registry { kArin, kRipe, kApnic, kLacnic, kAfrinic };

/// Printable registry name ("ARIN", "RIPE", ...).
const char* registry_name(Registry r);

/// All registries, in the order the paper's figures present them.
inline constexpr Registry kAllRegistries[] = {
    Registry::kArin, Registry::kRipe, Registry::kApnic, Registry::kLacnic,
    Registry::kAfrinic};

/// Origin information attached to an announced prefix.
struct Origin {
  Asn asn = 0;
  Registry registry = Registry::kRipe;
};

/// Result of a v4 longest-prefix lookup.
struct Route4 {
  net::Prefix4 prefix;
  Origin origin;
};

/// Result of a v6 longest-prefix lookup.
struct Route6 {
  net::Prefix6 prefix;
  Origin origin;
};

/// The RIB: announced prefixes with origin ASNs, answering longest-prefix
/// match queries for both families. Move-only (owns two tries).
class Rib {
 public:
  /// Announce a v4 prefix. Later announcements of the same prefix overwrite.
  void announce(const net::Prefix4& p, Origin origin);
  /// Announce a v6 prefix.
  void announce(const net::Prefix6& p, Origin origin);

  /// Longest matching announced prefix containing `a`, or nullopt.
  std::optional<Route4> lookup(net::IPv4Address a) const;
  std::optional<Route6> lookup(const net::IPv6Address& a) const;

  /// Origin AS of the longest match, or 0 when unrouted.
  Asn asn_of(net::IPv4Address a) const;
  Asn asn_of(const net::IPv6Address& a) const;

  std::size_t v4_size() const { return v4_.size(); }
  std::size_t v6_size() const { return v6_.size(); }

  /// All announced prefixes (for serialization / debugging).
  std::vector<Route4> v4_routes() const;
  std::vector<Route6> v6_routes() const;

 private:
  rtrie::PrefixTrie<Origin> v4_;
  rtrie::PrefixTrie<Origin> v6_;
};

}  // namespace dynamips::bgp
