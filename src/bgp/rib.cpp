#include "bgp/rib.h"

namespace dynamips::bgp {

const char* registry_name(Registry r) {
  switch (r) {
    case Registry::kArin: return "ARIN";
    case Registry::kRipe: return "RIPE";
    case Registry::kApnic: return "APNIC";
    case Registry::kLacnic: return "LACNIC";
    case Registry::kAfrinic: return "AFRINIC";
  }
  return "?";
}

void Rib::announce(const net::Prefix4& p, Origin origin) {
  v4_.insert(rtrie::key_of(p), unsigned(p.length()), origin);
}

void Rib::announce(const net::Prefix6& p, Origin origin) {
  v6_.insert(rtrie::key_of(p), unsigned(p.length()), origin);
}

std::optional<Route4> Rib::lookup(net::IPv4Address a) const {
  auto m = v4_.longest_match(rtrie::key_of(a));
  if (!m) return std::nullopt;
  // Recover the /len prefix from the left-aligned key bits.
  net::IPv4Address base{std::uint32_t(m->prefix_bits.hi >> 32)};
  return Route4{net::Prefix4{base, int(m->prefix_len)}, *m->value};
}

std::optional<Route6> Rib::lookup(const net::IPv6Address& a) const {
  auto m = v6_.longest_match(rtrie::key_of(a));
  if (!m) return std::nullopt;
  return Route6{
      net::Prefix6{net::IPv6Address{m->prefix_bits}, int(m->prefix_len)},
      *m->value};
}

Asn Rib::asn_of(net::IPv4Address a) const {
  auto r = lookup(a);
  return r ? r->origin.asn : 0;
}

Asn Rib::asn_of(const net::IPv6Address& a) const {
  auto r = lookup(a);
  return r ? r->origin.asn : 0;
}

std::vector<Route4> Rib::v4_routes() const {
  std::vector<Route4> out;
  out.reserve(v4_.size());
  v4_.visit([&](net::U128 bits, unsigned len, const Origin& o) {
    net::IPv4Address base{std::uint32_t(bits.hi >> 32)};
    out.push_back(Route4{net::Prefix4{base, int(len)}, o});
  });
  return out;
}

std::vector<Route6> Rib::v6_routes() const {
  std::vector<Route6> out;
  out.reserve(v6_.size());
  v6_.visit([&](net::U128 bits, unsigned len, const Origin& o) {
    out.push_back(Route6{net::Prefix6{net::IPv6Address{bits}, int(len)}, o});
  });
  return out;
}

}  // namespace dynamips::bgp
