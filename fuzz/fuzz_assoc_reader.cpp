// Fuzz the streaming AssocReader: never crash, bounded memory, exact
// line-disposition accounting.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "io/readers.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace io = dynamips::io;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  io::ReaderOptions options;
  options.max_line_bytes = 256;
  options.max_reject_fraction = 1.0;
  options.max_consecutive_rejects = 16;
  // Exercise the adjacent-dedup path too (off by default).
  options.assoc_dedup_adjacent = size % 2 == 0;
  io::AssocReader reader(in, options);
  std::uint64_t yielded = 0;
  while (reader.next()) ++yielded;
  const io::IngestStats& st = reader.stats();
  if (st.records_accepted != yielded) __builtin_trap();
  if (st.data_lines != st.records_accepted + st.total_rejects())
    __builtin_trap();
  if (st.lines_seen !=
      st.data_lines + st.headers_skipped + st.meta_lines + st.blank_lines)
    __builtin_trap();
  (void)reader.finish();
  return 0;
}
