// Fuzz Prefix6::parse: never crash; accepted prefixes round-trip.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "netaddr/prefix.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using dynamips::net::Prefix6;
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto prefix = Prefix6::parse(text);
  if (prefix) {
    auto again = Prefix6::parse(prefix->to_string());
    if (!again || *again != *prefix) __builtin_trap();
  }
  return 0;
}
