// standalone_main.cpp — corpus replay driver for non-libFuzzer builds.
//
// Every fuzz target defines LLVMFuzzerTestOneInput. Under
// -DDYNAMIPS_FUZZ=ON (clang) libFuzzer provides main() and explores; in
// every other build this file provides main() and simply replays the
// checked-in corpus, so the seed + regression inputs run as ordinary ctest
// cases under any toolchain. An input that trips an invariant aborts the
// process (nonzero exit), failing the test.
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open corpus input: " << path << '\n';
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (replay_file(entry.path()) != 0) return 1;
        ++replayed;
      }
    } else if (fs::exists(arg, ec)) {
      if (replay_file(arg) != 0) return 1;
      ++replayed;
    } else {
      std::cerr << "no such corpus path: " << arg << '\n';
      return 1;
    }
  }
  std::cout << "replayed " << replayed << " corpus inputs\n";
  return 0;
}
