// Fuzz the columnar batch decoders (io/columnar.h) over arbitrary bytes:
// every input must come back as a Status — structural damage as kDataLoss,
// version skew as kFailedPrecondition — or as a valid dataset. Never a
// crash, never an out-of-bounds read (the directory is validated before
// any payload is touched), and on success the ingest accounting must match
// the decoded dataset exactly.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/status.h"
#include "io/columnar.h"
#include "io/readers.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace io = dynamips::io;
  using dynamips::core::StatusCode;
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  io::ReaderOptions options;
  options.max_reject_fraction = 1.0;     // never trip on fraction
  options.max_consecutive_rejects = 16;  // exercise the fail-fast path

  {
    io::IngestStats stats;
    auto echo = io::decode_echo_columnar(bytes, options, &stats);
    if (echo.ok()) {
      std::uint64_t records = 0;
      for (const auto& series : *echo) records += series.records.size();
      if (stats.records_accepted != records) __builtin_trap();
    } else if (echo.status().code() != StatusCode::kDataLoss &&
               echo.status().code() != StatusCode::kFailedPrecondition) {
      __builtin_trap();
    }
  }
  {
    io::IngestStats stats;
    auto assoc = io::decode_assoc_columnar(bytes, options, &stats);
    if (assoc.ok()) {
      std::uint64_t records = 0;
      for (const auto& log : *assoc) records += log.records.size();
      if (stats.records_accepted != records) __builtin_trap();
    } else if (assoc.status().code() != StatusCode::kDataLoss &&
               assoc.status().code() != StatusCode::kFailedPrecondition) {
      __builtin_trap();
    }
  }
  return 0;
}
