// Fuzz the echo-record CSV codec: never crash, and every accepted line
// must survive to_csv -> echo_from_csv -> to_csv unchanged.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "io/dataset_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace io = dynamips::io;
  std::string_view line(reinterpret_cast<const char*>(data), size);
  auto rec = io::echo_from_csv(line);
  if (rec) {
    std::string canon = io::to_csv(*rec);
    auto again = io::echo_from_csv(canon);
    if (!again || io::to_csv(*again) != canon) __builtin_trap();
  }
  return 0;
}
