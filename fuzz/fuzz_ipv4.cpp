// Fuzz IPv4Address::parse: never crash, and every accepted input must
// round-trip through its canonical text to the same value.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "netaddr/ipv4.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using dynamips::net::IPv4Address;
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto addr = IPv4Address::parse(text);
  if (addr) {
    auto again = IPv4Address::parse(addr->to_string());
    if (!again || *again != *addr) __builtin_trap();
  }
  return 0;
}
