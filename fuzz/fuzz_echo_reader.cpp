// Fuzz the streaming EchoReader over arbitrary byte streams: never crash,
// bounded memory (line/field caps), and accounting invariants hold —
// every physical line is attributed to exactly one disposition, and the
// record count matches what next() yielded.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "io/readers.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace io = dynamips::io;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  io::ReaderOptions options;
  options.max_line_bytes = 256;           // exercise the oversize path
  options.max_reject_fraction = 1.0;      // never trip on fraction
  options.max_consecutive_rejects = 16;   // exercise the fail-fast path
  io::EchoReader reader(in, options);
  std::uint64_t yielded = 0;
  while (reader.next()) ++yielded;
  const io::IngestStats& st = reader.stats();
  if (st.records_accepted != yielded) __builtin_trap();
  if (st.data_lines != st.records_accepted + st.total_rejects())
    __builtin_trap();
  if (st.lines_seen !=
      st.data_lines + st.headers_skipped + st.meta_lines + st.blank_lines)
    __builtin_trap();
  (void)reader.finish();  // must not throw for any verdict
  return 0;
}
