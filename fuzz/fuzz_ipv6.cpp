// Fuzz IPv6Address::parse: never crash, bounded allocation, and every
// accepted input must round-trip through its canonical text.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "netaddr/ipv6.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using dynamips::net::IPv6Address;
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto addr = IPv6Address::parse(text);
  if (addr) {
    auto again = IPv6Address::parse(addr->to_string());
    if (!again || *again != *addr) __builtin_trap();
  }
  return 0;
}
